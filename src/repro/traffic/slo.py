"""Per-tenant SLO accounting: goodput vs offered, p99 budget, violations.

Overload is invisible to mean-throughput metrics — a retry storm can
keep the pipes full while *useful* work drops to zero.  The tracker
therefore distinguishes:

* **offered** — logical operations the tenant asked for (first attempts;
  retries are amplification, counted separately);
* **good** — operations completed within the latency ``budget_ns``,
  measured from the *first* attempt's arrival (a retry that eventually
  lands outside the budget is late: real work, no user value);
* **late / failed / shed / throttled** — the non-good outcomes, each
  attributed so an experiment can say *where* load was lost.

Two bucketing conventions coexist, deliberately:

* the aggregate :meth:`SLOTracker.timeline` buckets completions by
  **completion time** — it answers "what did goodput look like at time
  t", the recovery curve the overload figures plot;
* per-tenant violation accounting buckets good completions by **offer
  time** — it answers "of the work offered in this window, how much met
  its SLO", which is what time-in-violation means contractually.

Samples landing after the configured horizon are **dropped, not
clamped** — clamping would silently inflate the final bucket (the exact
bug fixed in :mod:`repro.experiments.availability` in this change).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.stats import LatencyRecorder

__all__ = ["TenantStats", "SLOTracker"]


class TenantStats:
    """Counters for one tenant (see module docstring for the taxonomy)."""

    __slots__ = ("tenant", "offered", "attempts", "retries", "good",
                 "late", "failed", "shed", "throttled", "recorder",
                 "offered_by_bucket", "good_by_bucket")

    def __init__(self, tenant: str, buckets: int) -> None:
        self.tenant = tenant
        self.offered = 0
        self.attempts = 0
        self.retries = 0
        self.good = 0
        self.late = 0
        self.failed = 0
        self.shed = 0
        self.throttled = 0
        self.recorder = LatencyRecorder(f"slo-{tenant}")
        self.offered_by_bucket = [0] * buckets
        self.good_by_bucket = [0] * buckets


class SLOTracker:
    """Windowed per-tenant SLO bookkeeping for one experiment run.

    ``budget_ns`` is the per-op latency budget (measured from first
    arrival, so client-side queueing and retries count against it).
    ``bucket_ns`` × ``buckets`` is the measurement horizon; later
    samples are dropped and tallied in :attr:`dropped`.
    ``goodput_floor`` is the violation threshold: a bucket where a
    tenant's good completions fall below ``floor × offered`` counts
    toward its time-in-violation.
    """

    __slots__ = ("budget_ns", "bucket_ns", "buckets", "goodput_floor",
                 "dropped", "_tenants", "_offered", "_done", "_good",
                 "_shed", "_recorders")

    def __init__(self, budget_ns: int, bucket_ns: int, buckets: int,
                 goodput_floor: float = 0.9) -> None:
        if budget_ns <= 0:
            raise ValueError(f"budget_ns must be positive, got {budget_ns}")
        if bucket_ns <= 0:
            raise ValueError(f"bucket_ns must be positive, got {bucket_ns}")
        if buckets < 1:
            raise ValueError(f"need >= 1 bucket, got {buckets}")
        if not 0 < goodput_floor <= 1:
            raise ValueError(
                f"goodput_floor must be in (0, 1], got {goodput_floor}")
        self.budget_ns = budget_ns
        self.bucket_ns = bucket_ns
        self.buckets = buckets
        self.goodput_floor = goodput_floor
        self.dropped = 0
        self._tenants: Dict[str, TenantStats] = {}
        self._offered = [0] * buckets
        self._done = [0] * buckets
        self._good = [0] * buckets
        self._shed = [0] * buckets
        self._recorders = [LatencyRecorder(f"bucket-{i}")
                           for i in range(buckets)]

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def tenant(self, name: str) -> TenantStats:
        """Get-or-create the stats record for ``name``."""
        stats = self._tenants.get(name)
        if stats is None:
            stats = TenantStats(name, self.buckets)
            self._tenants[name] = stats
        return stats

    def _bucket_of(self, now_ns: int) -> Optional[int]:
        """Bucket index for ``now_ns``, or None past the horizon.

        Post-horizon samples are dropped — never clamped into the final
        bucket, which would inflate it.
        """
        index = now_ns // self.bucket_ns
        if index >= self.buckets:
            self.dropped += 1
            return None
        return int(index)

    def record_offered(self, tenant: str, now_ns: int) -> None:
        """A new logical op arrived (first attempt only, not retries)."""
        stats = self.tenant(tenant)
        stats.offered += 1
        bucket = self._bucket_of(now_ns)
        if bucket is not None:
            stats.offered_by_bucket[bucket] += 1
            self._offered[bucket] += 1

    def record_attempt(self, tenant: str, attempt: int) -> None:
        """Attempt number ``attempt`` (1-based) was issued."""
        stats = self.tenant(tenant)
        stats.attempts += 1
        if attempt > 1:
            stats.retries += 1

    def record_done(self, tenant: str, offered_ns: int,
                    now_ns: int) -> None:
        """The op offered at ``offered_ns`` completed at ``now_ns``."""
        stats = self.tenant(tenant)
        latency = now_ns - offered_ns
        good = latency <= self.budget_ns
        if good:
            stats.good += 1
        else:
            stats.late += 1
        stats.recorder.record(latency)
        done_bucket = self._bucket_of(now_ns)
        if done_bucket is not None:
            self._done[done_bucket] += 1
            self._recorders[done_bucket].record(latency)
            if good:
                self._good[done_bucket] += 1
        if good:
            offer_bucket = self._bucket_of(offered_ns)
            if offer_bucket is not None:
                stats.good_by_bucket[offer_bucket] += 1

    def record_shed(self, tenant: str, now_ns: int,
                    reason: str = "queue-full") -> None:
        """The op was rejected at an edge (``queue-full``/``throttled``)."""
        stats = self.tenant(tenant)
        if reason == "throttled":
            stats.throttled += 1
        else:
            stats.shed += 1
        bucket = self._bucket_of(now_ns)
        if bucket is not None:
            self._shed[bucket] += 1

    def record_failed(self, tenant: str) -> None:
        """The client gave up on the op (retry budget exhausted)."""
        self.tenant(tenant).failed += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def timeline(self) -> List[Dict[str, object]]:
        """Aggregate per-bucket rows — the goodput/p99 recovery curve."""
        rows: List[Dict[str, object]] = []
        for index in range(self.buckets):
            recorder = self._recorders[index]
            rows.append({
                "t_ms": round(index * self.bucket_ns / 1e6, 3),
                "offered": self._offered[index],
                "done": self._done[index],
                "good": self._good[index],
                "shed": self._shed[index],
                "goodput_kops": round(
                    self._good[index] / (self.bucket_ns / 1e9) / 1e3, 2),
                "p99_us": round(recorder.percentile_us(99), 2)
                if recorder.count else 0.0,
            })
        return rows

    def tenant_rows(self) -> List[Dict[str, object]]:
        """Per-tenant summary rows, sorted by tenant name."""
        rows: List[Dict[str, object]] = []
        for name in sorted(self._tenants):
            stats = self._tenants[name]
            rows.append({
                "tenant": name,
                "offered": stats.offered,
                "attempts": stats.attempts,
                "retries": stats.retries,
                "good": stats.good,
                "late": stats.late,
                "failed": stats.failed,
                "shed": stats.shed,
                "throttled": stats.throttled,
                "goodput_ratio": round(stats.good / stats.offered, 4)
                if stats.offered else 0.0,
                "p99_us": round(stats.recorder.percentile_us(99), 2)
                if stats.recorder.count else 0.0,
                "violation_ms": round(
                    self._violation_ns(stats) / 1e6, 3),
            })
        return rows

    def _violation_ns(self, stats: TenantStats) -> int:
        """Σ bucket time where good completions missed the floor."""
        total = 0
        for index in range(self.buckets):
            offered = stats.offered_by_bucket[index]
            if offered and stats.good_by_bucket[index] \
                    < self.goodput_floor * offered:
                total += self.bucket_ns
        return total
