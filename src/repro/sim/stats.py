"""Measurement utilities: latency recorders, counters and utilization probes.

Every experiment in the reproduction reports one or more of:

* latency distributions (average / 95th / 99th percentile), matching the
  metrics in Figures 2, 8, 10, 11, 12 and Table 2 of the paper;
* throughput (operations per second over a simulated interval), Figure 9;
* CPU utilization and context-switch counts, Figures 2 and 9.

The recorders here store raw samples and compute percentiles with linear
interpolation, the same convention as ``numpy.percentile``'s default.
Samples live in a compact ``array('q')`` rather than a list — at the
scale-out experiments' volumes (10⁵ clients × several ops each, per sweep
point) that is 8 bytes per sample instead of a ~28-byte boxed int plus
pointer, with identical append/extend behaviour.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, Optional, Sequence

from .units import to_us

__all__ = ["LatencyRecorder", "Counter", "UtilizationTracker", "summarize_us"]


def _percentile(sorted_samples: Sequence[int], pct: float) -> float:
    """Linear-interpolated percentile of pre-sorted samples."""
    if not sorted_samples:
        raise ValueError("no samples recorded")
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    rank = (pct / 100.0) * (len(sorted_samples) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_samples[low]
    frac = rank - low
    return sorted_samples[low] * (1 - frac) + sorted_samples[high] * frac


class LatencyRecorder:
    """Collects latency samples (nanoseconds) and reports statistics.

    Storage is a signed-64-bit ``array('q')``: dense, cache-friendly, and
    still list-shaped (``append``/``extend``/iteration/indexing), so the
    public surface — :attr:`samples`, :meth:`record`, :meth:`merge`, the
    percentile accessors — is unchanged from the list-backed version.
    The sorted view is computed lazily and cached; any mutation
    (:meth:`record` or :meth:`merge`) invalidates the cache.
    """

    __slots__ = ("name", "samples", "_sorted")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.samples: array = array("q")
        self._sorted: Optional[array] = None

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency sample: {latency_ns}")
        self.samples.append(latency_ns)
        self._sorted = None

    def merge(self, other: "LatencyRecorder") -> None:
        """Append ``other``'s samples (one memcpy-like extend)."""
        self.samples.extend(other.samples)
        self._sorted = None

    def __len__(self) -> int:
        return len(self.samples)

    def _ensure_sorted(self) -> array:
        if self._sorted is None:
            self._sorted = array("q", sorted(self.samples))
        return self._sorted

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        if not self.samples:
            raise ValueError("no samples recorded")
        return sum(self.samples) / len(self.samples)

    def percentile(self, pct: float) -> float:
        return _percentile(self._ensure_sorted(), pct)

    def min(self) -> int:
        return self._ensure_sorted()[0]

    def max(self) -> int:
        return self._ensure_sorted()[-1]

    def mean_us(self) -> float:
        return to_us(self.mean())

    def percentile_us(self, pct: float) -> float:
        return to_us(self.percentile(pct))

    def summary_us(self) -> Dict[str, float]:
        """Average / p95 / p99 in microseconds — the paper's metric triple."""
        return {
            "count": self.count,
            "avg_us": self.mean_us(),
            "p50_us": self.percentile_us(50),
            "p95_us": self.percentile_us(95),
            "p99_us": self.percentile_us(99),
            "max_us": to_us(self.max()),
        }


def summarize_us(samples_ns: Sequence[int]) -> Dict[str, float]:
    """One-shot summary for a raw list of nanosecond samples."""
    recorder = LatencyRecorder()
    for sample in samples_ns:
        recorder.record(sample)
    return recorder.summary_us()


class Counter:
    """A named monotonic counter (context switches, messages, bytes...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> int:
        value, self.value = self.value, 0
        return value


class UtilizationTracker:
    """Tracks busy time of a resource to report fractional utilization.

    Components call :meth:`add_busy` with each busy interval; utilization over
    a window is busy-time / window.  Values can legitimately exceed 1.0 only
    if the caller double-books the resource, so we clamp and flag.
    """

    __slots__ = ("name", "busy_ns")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.busy_ns = 0

    def add_busy(self, duration_ns: int) -> None:
        if duration_ns < 0:
            raise ValueError("negative busy duration")
        self.busy_ns += duration_ns

    def utilization(self, window_ns: int) -> float:
        if window_ns <= 0:
            raise ValueError("window must be positive")
        return min(1.0, self.busy_ns / window_ns)

    def reset(self) -> None:
        self.busy_ns = 0
