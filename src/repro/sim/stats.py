"""Measurement utilities: latency recorders, counters and utilization probes.

Every experiment in the reproduction reports one or more of:

* latency distributions (average / 95th / 99th percentile), matching the
  metrics in Figures 2, 8, 10, 11, 12 and Table 2 of the paper;
* throughput (operations per second over a simulated interval), Figure 9;
* CPU utilization and context-switch counts, Figures 2 and 9.

The recorders here store raw samples and compute percentiles with linear
interpolation, the same convention as ``numpy.percentile``'s default.
Samples live in a compact ``array('q')`` rather than a list — at the
scale-out experiments' volumes (10⁵ clients × several ops each, per sweep
point) that is 8 bytes per sample instead of a ~28-byte boxed int plus
pointer, with identical append/extend behaviour.

Two performance modes layer on top of that storage without changing a
single reported number:

* **Shared-memory attachment** (:meth:`LatencyRecorder.attach_shared`) —
  a recorder can wrap an int64 ``memoryview`` into a
  ``multiprocessing.shared_memory`` slab written by a sweep worker
  process, so the parent reconstructs the full distribution zero-copy
  instead of unpickling a million-entry list.  Attached recorders are
  read-only until mutated: the first :meth:`record`/:meth:`merge`
  copies the view into an owned ``array('q')`` (copy-on-write).
* **Vectorized summaries** — when numpy is importable and the recorder
  holds at least :data:`NUMPY_MIN_SAMPLES` samples, sorting and summing
  go through numpy.  The percentile formula itself stays the shared
  pure-Python :func:`_percentile` (values are coerced back to Python
  ints before any float arithmetic), so both paths are **bit-identical**
  — ``tests/sim/test_stats.py`` pins them equal at float tolerance 0.
"""

from __future__ import annotations

import math
from array import array
from typing import Any, Dict, Optional, Sequence, Union

from .units import to_us

try:  # numpy is a declared dependency, but the fallback keeps the
    import numpy as _numpy  # recorders usable in stripped environments.
except ImportError:  # pragma: no cover - exercised via monkeypatch
    _numpy = None  # type: ignore[assignment]

__all__ = [
    "LatencyRecorder",
    "Counter",
    "UtilizationTracker",
    "summarize_us",
    "NUMPY_MIN_SAMPLES",
]

#: Sample-count crossover below which ``sorted()`` beats the round-trip
#: into an ndarray.  Module-level (not per-instance) so tests can force
#: either path; the two paths are pinned bit-identical regardless.
NUMPY_MIN_SAMPLES = 2048

#: Raw samples: an owned ``array('q')`` or an attached int64 memoryview.
Samples = Union["array[int]", memoryview]


def _percentile(sorted_samples: "Sequence[int]", pct: float) -> float:
    """Linear-interpolated percentile of pre-sorted samples.

    Accepts any int64 sequence (``array``, ``memoryview``, ndarray);
    indexed values are coerced to Python ints *before* the float
    arithmetic so the result is bit-identical across storage backends.
    """
    if not len(sorted_samples):
        raise ValueError("no samples recorded")
    if len(sorted_samples) == 1:
        return int(sorted_samples[0])
    rank = (pct / 100.0) * (len(sorted_samples) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return int(sorted_samples[low])
    frac = rank - low
    return int(sorted_samples[low]) * (1 - frac) + \
        int(sorted_samples[high]) * frac


class LatencyRecorder:
    """Collects latency samples (nanoseconds) and reports statistics.

    Storage is a signed-64-bit ``array('q')``: dense, cache-friendly, and
    still list-shaped (``append``/``extend``/iteration/indexing), so the
    public surface — :attr:`samples`, :meth:`record`, :meth:`merge`, the
    percentile accessors — is unchanged from the list-backed version.
    The sorted view is computed lazily and cached; any mutation
    (:meth:`record` or :meth:`merge`) invalidates the cache.

    A recorder may instead *attach* to an int64 ``memoryview`` over a
    shared-memory slab (:meth:`attach_shared`) — same read surface, zero
    copies; the first mutation converts it to an owned array.
    """

    __slots__ = ("name", "samples", "_sorted", "_source")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.samples: Samples = array("q")
        self._sorted: Optional[Any] = None
        # Keeps the object owning an attached view's memory (e.g. a
        # transport arena) alive for as long as the recorder reads it.
        self._source: Optional[object] = None

    @classmethod
    def attach_shared(cls, view: memoryview, name: str = "",
                      source: Optional[object] = None) -> "LatencyRecorder":
        """A recorder reading samples zero-copy from ``view`` (int64).

        ``source`` is any object whose liveness keeps the view's backing
        memory mapped (the sweep transport passes its arena).  The view
        is read-only from the recorder's perspective; mutating calls
        transparently copy it into an owned ``array('q')`` first.
        """
        if view.format != "q":
            raise ValueError(
                f"attach_shared needs an int64 ('q') view, got "
                f"format {view.format!r}")
        recorder = cls(name)
        recorder.samples = view
        recorder._source = source
        return recorder

    @property
    def is_shared(self) -> bool:
        """True while samples still live in an attached (foreign) view."""
        return not isinstance(self.samples, array)

    def _own(self) -> "array[int]":
        """Copy-on-write: materialize attached views into an owned array."""
        if not isinstance(self.samples, array):
            self.samples = array("q", self.samples)
            self._source = None
        return self.samples

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency sample: {latency_ns}")
        self._own().append(latency_ns)
        self._sorted = None

    def merge(self, other: "LatencyRecorder") -> None:
        """Append ``other``'s samples (one memcpy-like extend)."""
        self._own().extend(other.samples)
        self._sorted = None

    def __len__(self) -> int:
        return len(self.samples)

    def _use_numpy(self) -> bool:
        return _numpy is not None and len(self.samples) >= NUMPY_MIN_SAMPLES

    def _ensure_sorted(self) -> "Sequence[int]":
        if self._sorted is None:
            if self._use_numpy():
                # One C memcpy out of the buffer, one C sort.  Sorting
                # dominates summary cost at scale-out sample counts; the
                # values (and hence every percentile) are identical to
                # the sorted() path — only the algorithm changes.
                self._sorted = _numpy.sort(
                    _numpy.frombuffer(self.samples, dtype=_numpy.int64))
            else:
                self._sorted = array("q", sorted(self.samples))
        return self._sorted  # type: ignore[no-any-return]

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        if not len(self.samples):
            raise ValueError("no samples recorded")
        return self._exact_sum() / len(self.samples)

    def _exact_sum(self) -> int:
        """Integer sample sum, vectorized when provably overflow-free.

        ``numpy.sum`` accumulates in int64; Python's ``sum`` is exact at
        any magnitude.  Samples are non-negative (``record`` enforces
        it), so ``count * max <= 2**62`` guarantees the int64 path can't
        wrap and both paths return the same integer.
        """
        if self._use_numpy():
            arr = _numpy.frombuffer(self.samples, dtype=_numpy.int64)
            peak = int(arr.max())
            if peak >= 0 and len(arr) * max(peak, 1) <= (1 << 62):
                return int(arr.sum())
        return sum(self.samples)

    def percentile(self, pct: float) -> float:
        return _percentile(self._ensure_sorted(), pct)

    def min(self) -> int:
        return int(self._ensure_sorted()[0])

    def max(self) -> int:
        return int(self._ensure_sorted()[-1])

    def mean_us(self) -> float:
        return to_us(self.mean())

    def percentile_us(self, pct: float) -> float:
        return to_us(self.percentile(pct))

    def summary_us(self) -> Dict[str, float]:
        """Average / p95 / p99 in microseconds — the paper's metric triple."""
        return {
            "count": self.count,
            "avg_us": self.mean_us(),
            "p50_us": self.percentile_us(50),
            "p95_us": self.percentile_us(95),
            "p99_us": self.percentile_us(99),
            "max_us": to_us(self.max()),
        }


def summarize_us(samples_ns: Sequence[int]) -> Dict[str, float]:
    """One-shot summary for a raw list of nanosecond samples."""
    recorder = LatencyRecorder()
    for sample in samples_ns:
        recorder.record(sample)
    return recorder.summary_us()


class Counter:
    """A named monotonic counter (context switches, messages, bytes...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> int:
        value, self.value = self.value, 0
        return value


class UtilizationTracker:
    """Tracks busy time of a resource to report fractional utilization.

    Components call :meth:`add_busy` with each busy interval; utilization over
    a window is busy-time / window.  Values can legitimately exceed 1.0 only
    if the caller double-books the resource, so we clamp and flag.
    """

    __slots__ = ("name", "busy_ns")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.busy_ns = 0

    def add_busy(self, duration_ns: int) -> None:
        if duration_ns < 0:
            raise ValueError("negative busy duration")
        self.busy_ns += duration_ns

    def utilization(self, window_ns: int) -> float:
        if window_ns <= 0:
            raise ValueError("window must be positive")
        return min(1.0, self.busy_ns / window_ns)

    def reset(self) -> None:
        self.busy_ns = 0
