"""Time and size unit helpers.

Simulated time is integer nanoseconds throughout the code base; these helpers
keep call sites readable (``us(5)`` instead of ``5_000``).  Converters back to
floating-point microseconds/milliseconds exist for reporting, since the paper
reports latencies in µs and ms.
"""

from __future__ import annotations

__all__ = [
    "ns",
    "us",
    "ms",
    "seconds",
    "to_us",
    "to_ms",
    "to_seconds",
    "KiB",
    "MiB",
    "GiB",
    "gbps_to_bytes_per_ns",
]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


def ns(value: float) -> int:
    """Nanoseconds (identity, for symmetry)."""
    return int(value)


def us(value: float) -> int:
    """Microseconds to nanoseconds."""
    return int(value * 1_000)


def ms(value: float) -> int:
    """Milliseconds to nanoseconds."""
    return int(value * 1_000_000)


def seconds(value: float) -> int:
    """Seconds to nanoseconds."""
    return int(value * 1_000_000_000)


def to_us(nanoseconds: float) -> float:
    """Nanoseconds to microseconds."""
    return nanoseconds / 1_000


def to_ms(nanoseconds: float) -> float:
    """Nanoseconds to milliseconds."""
    return nanoseconds / 1_000_000


def to_seconds(nanoseconds: float) -> float:
    """Nanoseconds to seconds."""
    return nanoseconds / 1_000_000_000


def gbps_to_bytes_per_ns(gigabits_per_second: float) -> float:
    """Link speed in Gbps to bytes transferred per nanosecond."""
    return gigabits_per_second / 8.0
