"""Deterministic random-number streams for the simulator.

Every stochastic component (scheduler noise, workload generators, failure
injection) draws from its own named stream derived from a single experiment
seed, so experiments are reproducible and adding a new consumer does not
perturb the draws seen by existing ones.

The Zipfian generator follows the rejection-inversion-free algorithm used by
the original YCSB implementation (Gray et al., "Quickly generating
billion-record synthetic databases"), including the *scrambled* variant that
spreads hot keys across the keyspace.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional

__all__ = [
    "RandomStreams",
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "LatestGenerator",
    "fnv_hash64",
    "fnv_hash_str",
]

FNV_OFFSET_BASIS_64 = 0xCBF29CE484222325
FNV_PRIME_64 = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Seed for generators constructed without an explicit stream.  Fixed, not
#: OS entropy: a bare ``ZipfianGenerator(n)`` must still be reproducible
#: run to run (simlint DET01 forbids unseeded ``random.Random()``).
_DEFAULT_SEED = 0x5EED


def fnv_hash64(value: int) -> int:
    """FNV-1a hash of an integer, matching YCSB's key scrambler."""
    hashval = FNV_OFFSET_BASIS_64
    for _ in range(8):
        octet = value & 0xFF
        value >>= 8
        hashval = hashval ^ octet
        hashval = (hashval * FNV_PRIME_64) & _MASK64
    return hashval


def fnv_hash_str(name: str) -> int:
    """FNV-1a over the name's UTF-8 bytes.

    Built-in ``hash()`` is salted per interpreter process (PYTHONHASHSEED),
    which would make "deterministic" streams differ between runs.  Named
    RNG streams and the cluster router's hash ring both derive positions
    from this, so identical configs map identically across processes.
    """
    hashval = FNV_OFFSET_BASIS_64
    for octet in name.encode("utf-8"):
        hashval = hashval ^ octet
        hashval = (hashval * FNV_PRIME_64) & _MASK64
    return hashval


class RandomStreams:
    """A family of independent named :class:`random.Random` streams."""

    __slots__ = ("seed", "_streams")

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created deterministically on first use."""
        if name not in self._streams:
            # Derive a per-stream seed from the experiment seed and the name.
            derived = fnv_hash64(self.seed ^ fnv_hash_str(name))
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """A child family, for components that create their own substreams."""
        derived = fnv_hash64(self.seed ^ fnv_hash_str(name))
        return RandomStreams(derived)


class ZipfianGenerator:
    """Zipf-distributed integers in ``[0, items)``.

    Item 0 is the most popular.  ``theta`` defaults to YCSB's 0.99.
    """

    __slots__ = ("items", "theta", "rng", "alpha", "zetan", "zeta2", "eta")

    def __init__(self, items: int, theta: float = 0.99,
                 rng: Optional[random.Random] = None) -> None:
        if items <= 0:
            raise ValueError("items must be positive")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.items = items
        self.theta = theta
        self.rng = rng if rng is not None else random.Random(_DEFAULT_SEED)
        self.alpha = 1.0 / (1.0 - theta)
        self.zetan = self._zeta(items, theta)
        self.zeta2 = self._zeta(2, theta)
        self.eta = ((1 - (2.0 / items) ** (1 - theta))
                    / (1 - self.zeta2 / self.zetan))

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self.rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.items * (self.eta * u - self.eta + 1) ** self.alpha)


class ScrambledZipfianGenerator:
    """Zipfian popularity spread uniformly over the keyspace via hashing."""

    __slots__ = ("items", "_zipf")

    def __init__(self, items: int, theta: float = 0.99,
                 rng: Optional[random.Random] = None) -> None:
        self.items = items
        self._zipf = ZipfianGenerator(items, theta, rng)

    def next(self) -> int:
        return fnv_hash64(self._zipf.next()) % self.items


class LatestGenerator:
    """YCSB's "latest" distribution: recency-skewed over a growing keyspace.

    The most recently inserted items are the most popular — used by
    workload D.  Call :meth:`observe_insert` as the keyspace grows.
    """

    __slots__ = ("items", "theta", "rng", "_zipf")

    def __init__(self, items: int, theta: float = 0.99,
                 rng: Optional[random.Random] = None) -> None:
        self.items = items
        self.theta = theta
        self.rng = rng if rng is not None else random.Random(_DEFAULT_SEED)
        self._zipf = ZipfianGenerator(max(items, 1), theta, self.rng)

    def observe_insert(self) -> None:
        self.items += 1
        # Rebuilding zeta incrementally: zeta(n+1) = zeta(n) + 1/(n+1)^theta.
        self._zipf.zetan += 1.0 / (self.items ** self._zipf.theta)
        self._zipf.items = self.items
        self._zipf.eta = ((1 - (2.0 / self.items) ** (1 - self.theta))
                          / (1 - self._zipf.zeta2 / self._zipf.zetan))

    def next(self) -> int:
        offset = self._zipf.next()
        return max(0, self.items - 1 - offset)


def exponential(rng: random.Random, mean: float) -> float:
    """Exponentially distributed sample with the given mean."""
    return rng.expovariate(1.0 / mean) if mean > 0 else 0.0


def lognormal_from_median(rng: random.Random, median: float, sigma: float) -> float:
    """Log-normal sample parameterised by its median (heavy-tailed delays)."""
    return median * math.exp(rng.gauss(0.0, sigma))
