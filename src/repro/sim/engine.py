"""Discrete-event simulation kernel.

This module provides the event loop that every simulated component in the
reproduction (NICs, CPUs, links, storage processes) runs on.  The design
follows the classic process-interaction style popularised by SimPy: model
logic is written as Python generator functions ("processes") that ``yield``
events; the engine suspends the process until the event fires and resumes it
with the event's value.

Simulated time is kept in integer **nanoseconds** to avoid floating-point
drift when summing many small delays.  Helpers for converting between units
live in :mod:`repro.sim.units`.

Performance
-----------
The kernel is the hot loop under every figure, so its data structures are
deliberately lean (see docs/INTERNALS.md, "Kernel internals & performance
model"):

* every class carries ``__slots__`` — no per-object ``__dict__``;
* every scheduled occurrence is a plain ``(time, seq, kind, payload)``
  tuple.  ``seq`` is a global tie-breaker that preserves FIFO order at
  equal timestamps and guarantees comparisons never reach the payload;
* near-future entries live in a **hierarchical timing wheel** (the
  short-delay regime — NIC per-WQE processing, context switches, link
  hops — is O(1) insert/dispatch); far-future deadlines overflow to the
  original binary heap and cascade into the wheel on horizon crossing.
  ``Simulator(scheduler="heap")`` selects the pure-heap structure so the
  two implementations can be diffed event-for-event;
* process bootstrap and interrupt delivery are scheduled as *direct
  resume* entries — no throwaway :class:`Event` is allocated;
* callbacks are stored inline: the common single-subscriber case (a
  process waiting on a ``timeout``) occupies one slot (``_cb1``) and
  never allocates a list; only a second subscriber spills to ``_cbs``.

A ``yield sim.timeout(d)`` round-trip therefore costs one ``Timeout``
object and one schedule tuple — no bootstrap events, no callback lists,
no bound-method allocations (processes cache ``self._resume``).

Hot model code can go further: a process may ``yield d`` with a bare
non-negative ``int`` to sleep ``d`` nanoseconds.  That schedules a
*tokened direct resume* — one heap tuple, no event object at all.  The
resume value is ``None``; use :meth:`Simulator.timeout` when the value
or the event object itself matters (e.g. with ``any_of``).

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(1000)
...     return sim.now
>>> proc = sim.process(hello(sim))
>>> sim.run()
>>> proc.value
1000
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
    "ProcessGenerator",
]

#: The type of a model-process generator: yields Events, combinators, or
#: non-negative bare-delay ints; the kernel sends event values back in.
ProcessGenerator = Generator[Any, Any, Any]


class SimulationError(Exception):
    """Raised for misuse of the simulation API (double trigger, etc.)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


PENDING = object()

# Heap-entry kinds.  Entries are (time, seq, kind, payload); seq is unique
# so tuple comparison never reaches kind or payload.
_KIND_EVENT = 0    # payload: Event — run its callbacks.
_KIND_RESUME = 1   # payload: (Process, ok, value) — resume directly.
_KIND_CALL = 2     # payload: zero-arg callable (call_at).
_KIND_DELAY = 3    # payload: (Process, token) — resume from a bare delay.

# "No deadline": beyond any plausible simulated time (≈292 years in ns).
_T_MAX = 2 ** 63

# Timing-wheel geometry (docs/INTERNALS.md §8).  Level 0 resolves single
# nanoseconds across the current 1024 ns block, so a bucket holds exactly
# one timestamp and append order *is* (time, seq) dispatch order.  Level 1
# resolves 1024 ns slots across the current ~1.05 ms superblock; the tuple
# heap is the overflow level beyond that horizon.
_L0_BITS = 10
_L0_SIZE = 1 << _L0_BITS
_L0_MASK = _L0_SIZE - 1
_L1_SIZE = 1 << _L0_BITS
_SPAN_BITS = 2 * _L0_BITS          # wheel horizon: 2**20 ns ≈ 1.05 ms
_SPAN_MASK = (1 << _SPAN_BITS) - 1
# Precomputed slot bits: avoids re-building a fresh big int per insert.
_BIT = tuple(1 << i for i in range(_L0_SIZE))

#: One scheduled occurrence: ``(time, seq, kind, payload)``.
_Entry = Tuple[int, int, int, Any]


class Event:
    """A happening at a point in simulated time.

    Events start *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers them, which schedules their callbacks to run at the current
    simulation time.  A process that ``yield``\\ s an untriggered event is
    suspended until the event triggers.
    """

    __slots__ = ("sim", "_value", "_ok", "_cb1", "_cbs", "_processed")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        # Inline callback storage: first subscriber in _cb1, overflow in
        # _cbs.  The single-subscriber fast path never allocates a list.
        self._cb1: Optional[Callable[["Event"], None]] = None
        self._cbs: Optional[List[Callable[["Event"], None]]] = None
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        sim._schedule(sim.now, _KIND_EVENT, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A process yielding on this event will have ``exception`` raised at
        the ``yield`` statement.
        """
        if self._value is not PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        sim = self.sim
        sim._schedule(sim.now, _KIND_EVENT, self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event was already processed the callback runs immediately —
        this keeps late subscribers from deadlocking.
        """
        if self._processed:
            callback(self)
        elif self._cb1 is None:
            self._cb1 = callback
        elif self._cbs is None:
            self._cbs = [callback]
        else:
            self._cbs.append(callback)


class Timeout(Event):
    """An event that fires after a fixed delay.

    Timeouts are born triggered: construction schedules the fire directly,
    so the only allocations on a ``yield sim.timeout(d)`` round-trip are
    the ``Timeout`` itself and its heap tuple.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None) -> None:
        # Single source of truth for the integer-nanosecond invariant:
        # every construction path (``sim.timeout`` or direct) lands here,
        # so a float timestamp can never reach the schedule.  Whole-number
        # floats and NumPy integers coerce; fractional delays are an error,
        # not a silent truncation.
        if type(delay) is not int:
            coerced = int(delay)
            if coerced != delay:
                raise ValueError(
                    f"timeout delay must be a whole number of ns, got {delay!r}")
            delay = coerced
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self._ok = True
        self._value = value
        self._cb1 = None
        self._cbs = None
        self._processed = False
        self.delay = delay
        sim._schedule(sim.now + delay, _KIND_EVENT, self)


class Process(Event):
    """A running model process wrapping a generator.

    The process is itself an event: it triggers when the generator returns
    (successfully, with the generator's return value) or raises (a failure
    carrying the exception).  This makes ``yield other_process`` a join.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_resume_cb",
                 "_send", "_throw", "_wait_token")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bumped on every resume; outstanding bare-delay entries carry the
        # token they were scheduled under, so a superseded delay (after an
        # interrupt) is recognised as stale at dispatch.
        self._wait_token = 0
        # Cache bound methods so the per-yield hot path does not allocate
        # or re-look them up.
        self._resume_cb = self._resume
        self._send = generator.send
        self._throw = generator.throw
        # Kick off the process at the current time — a direct-resume
        # entry, not a bootstrap Event.
        sim._schedule(sim.now, _KIND_RESUME, (self, True, None))

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        twice before it handles the first interrupt queues both.
        """
        if self._value is not PENDING:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        sim = self.sim
        sim._schedule(sim.now, _KIND_RESUME, (self, False, Interrupt(cause)))

    def _resume(self, trigger: Event) -> None:
        """Callback entry point: the event we were waiting on fired."""
        if self._value is not PENDING:
            return  # Process already finished (e.g. interrupted earlier).
        # Only the event currently waited on may resume us.  A superseded
        # wait (after an interrupt) still holds our callback but must not
        # fire it — not even when the process has since moved on to a
        # bare-delay wait (``_waiting_on is None``).
        if trigger is not self._waiting_on:
            return
        self._step(trigger._ok, trigger._value)

    def _step(self, ok: bool, value: Any) -> None:
        """Advance the generator one yield with a send (ok) or throw."""
        if self._value is not PENDING:
            return  # Finished between scheduling and dispatch.
        self._waiting_on = None
        self._wait_token = token = self._wait_token + 1
        try:
            if ok:
                target = self._send(value)
            else:
                target = self._throw(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        if type(target) is int:
            # Bare-delay fast path: ``yield <ns>`` sleeps without
            # allocating a Timeout — just one heap tuple.  The resume
            # value is None (use a Timeout if the value matters).
            if target >= 0:
                sim = self.sim
                sim._schedule(sim.now + target, _KIND_DELAY, (self, token))
                return
        elif isinstance(target, Event):
            # Inlined add_callback with the cached bound method — the
            # single-subscriber wait is the kernel's hottest edge.
            self._waiting_on = target
            if target._processed:
                self._resume(target)
            elif target._cb1 is None:
                target._cb1 = self._resume_cb
            elif target._cbs is None:
                target._cbs = [self._resume_cb]
            else:
                target._cbs.append(self._resume_cb)
            return
        # Give the process a chance to handle the misuse; otherwise it
        # fails with the SimulationError.
        error = SimulationError(
            f"process {self.name} yielded non-event {target!r}"
            if type(target) is not int
            else f"process {self.name} yielded negative delay {target}")
        try:
            self.generator.throw(error)
        except StopIteration as stop:
            self.succeed(stop.value)
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
        else:
            self.fail(error)


class AllOf(Event):
    """Triggers when all child events have triggered successfully.

    The value is a list of child values in the order given.  If any child
    fails, this event fails with that child's exception (first failure wins).
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self.events])


class AnyOf(Event):
    """Triggers when the first child event triggers.

    The value is a ``(event, value)`` pair identifying the winner.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if event._ok:
            self.succeed((event, event._value))
        else:
            self.fail(event._value)


class Simulator:
    """The event loop: a clock plus a schedule of pending entries.

    ``scheduler`` selects the schedule structure:

    * ``"wheel"`` (default) — a two-level hierarchical timing wheel for
      the near future with the binary heap retained as the overflow
      level; O(1) insert/dispatch in the short-delay regime where most
      bare-delay waits land (docs/INTERNALS.md §8);
    * ``"heap"`` — the plain tuple heap, kept so the equivalence suite
      can diff the two implementations event-for-event.

    ``None`` reads ``REPRO_SCHEDULER`` from the environment (default
    ``wheel``), which lets whole experiment pipelines be flipped without
    plumbing the knob through every constructor.

    Both structures dispatch in exactly ``(time, seq)`` order, so results
    are byte-identical — pinned by the fig8/fig9 golden-row tests.
    """

    __slots__ = ("now", "scheduler", "_heap", "_seq", "_front", "_l0",
                 "_l1", "_l0_occ", "_l1_occ", "_l0_block", "_l0_limit",
                 "_l1_block", "_l1_limit")

    def __init__(self, scheduler: Optional[str] = None) -> None:
        if scheduler is None:
            scheduler = os.environ.get("REPRO_SCHEDULER", "wheel")
        if scheduler not in ("wheel", "heap"):
            raise ValueError(
                f"unknown scheduler {scheduler!r} (expected 'wheel' or 'heap')")
        self.scheduler = scheduler
        self.now: int = 0
        self._heap: List[_Entry] = []  # Overflow level (or the whole schedule).
        self._seq = 0  # Tie-breaker preserving FIFO order at equal times.
        # Front spill: entries that land between ``now`` and an already
        # advanced level-0 block (only reachable after a limit/stop return
        # mid-cascade).  Almost always empty.
        self._front: List[_Entry] = []
        self._l0_occ = 0   # Occupied-slot bitmaps: lowest set bit == next
        self._l1_occ = 0   # slot, so empty slots are never scanned.
        self._l0_block = 0
        self._l0_limit = _L0_SIZE
        self._l1_block = 0
        self._l1_limit = 1 << _SPAN_BITS
        if scheduler == "wheel":
            self._l0: Optional[List[List[_Entry]]] = \
                [[] for _ in range(_L0_SIZE)]
            self._l1: List[List[_Entry]] = [[] for _ in range(_L1_SIZE)]
        else:
            self._l0 = None
            self._l1 = []

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event firing ``delay`` nanoseconds from now.

        Delay validation (whole number of ns, non-negative) lives in
        :class:`Timeout` itself so direct construction enforces the same
        integer-nanosecond invariant.
        """
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a model process from a generator."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling & execution
    # ------------------------------------------------------------------
    def _schedule(self, time: int, kind: int, payload: Any) -> None:
        """Insert one scheduled occurrence.

        Every push path (event trigger, timeout, bootstrap, interrupt,
        bare delay, ``call_at``) funnels through here, which is what lets
        the scheduler knob swap the structure without touching callers.
        """
        seq = self._seq
        self._seq = seq + 1
        entry = (time, seq, kind, payload)
        l0 = self._l0
        if l0 is None:
            heappush(self._heap, entry)
            return
        if time < self._l0_limit:
            if time >= self._l0_block:
                idx = time & _L0_MASK
                bucket = l0[idx]
                if not bucket:
                    self._l0_occ |= _BIT[idx]
                bucket.append(entry)
            else:
                heappush(self._front, entry)
        elif time < self._l1_limit:
            idx = (time >> _L0_BITS) & _L0_MASK
            bucket = self._l1[idx]
            if not bucket:
                self._l1_occ |= _BIT[idx]
            bucket.append(entry)
        else:
            heappush(self._heap, entry)

    def _queue(self, event: Event, delay: int = 0) -> None:
        """Schedule an already-triggered event's callback dispatch."""
        self._schedule(self.now + delay, _KIND_EVENT, event)

    def call_at(self, time: int, fn: Callable[[], None]) -> None:
        """Run a plain callable at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self.now})")
        self._schedule(time, _KIND_CALL, fn)

    def _promote(self, limit: int) -> bool:
        """Refill level 0 from the next occupied source.

        Cascades the lowest occupied level-1 slot down into level 0, or —
        with the whole wheel empty — jumps both wheel levels to the
        overflow heap's first superblock and drains every heap entry
        inside it into the wheel.  Returns False when the next source
        starts beyond ``limit`` (nothing is advanced) or nothing is
        scheduled at all.  Only called with level 0 and the front spill
        empty, so every migrated entry lands at or above the new block.
        """
        l0 = self._l0
        assert l0 is not None
        occ = self._l1_occ
        if occ:
            lsb = occ & -occ
            idx = lsb.bit_length() - 1
            block = self._l1_block + (idx << _L0_BITS)
            if block > limit:
                return False
            self._l1_occ = occ ^ lsb
            self._l0_block = block
            self._l0_limit = block + _L0_SIZE
            l0_occ = self._l0_occ
            bucket = self._l1[idx]
            for entry in bucket:
                i0 = entry[0] & _L0_MASK
                slot = l0[i0]
                if not slot:
                    l0_occ |= _BIT[i0]
                slot.append(entry)
            self._l0_occ = l0_occ
            bucket.clear()
            return True
        heap = self._heap
        if heap:
            t0 = heap[0][0]
            if t0 > limit:
                return False
            self._l1_block = t0 & ~_SPAN_MASK
            self._l1_limit = l1_limit = self._l1_block + (1 << _SPAN_BITS)
            self._l0_block = t0 & ~_L0_MASK
            self._l0_limit = l0_limit = self._l0_block + _L0_SIZE
            pop = heappop
            while heap and heap[0][0] < l1_limit:
                entry = pop(heap)
                time = entry[0]
                if time < l0_limit:
                    idx = time & _L0_MASK
                    slot = l0[idx]
                    if not slot:
                        self._l0_occ |= _BIT[idx]
                    slot.append(entry)
                else:
                    idx = (time >> _L0_BITS) & _L0_MASK
                    slot = self._l1[idx]
                    if not slot:
                        self._l1_occ |= _BIT[idx]
                    slot.append(entry)
            return True
        return False

    def _pop_wheel(self) -> Optional[_Entry]:
        """Remove and return the earliest wheel entry (``step``'s source)."""
        l0 = self._l0
        assert l0 is not None
        while True:
            front = self._front
            if front:
                return heappop(front)
            occ = self._l0_occ
            if occ:
                lsb = occ & -occ
                bucket = l0[lsb.bit_length() - 1]
                entry = bucket.pop(0)
                if not bucket:
                    self._l0_occ = occ ^ lsb
                return entry
            if not self._promote(_T_MAX):
                return None

    def _dispatch(self, kind: int, payload: Any) -> None:
        """Dispatch one already-dequeued entry (shared cold path)."""
        if kind == _KIND_EVENT:
            event = payload
            cb1 = event._cb1
            cbs = event._cbs
            event._cb1 = None
            event._cbs = None
            event._processed = True
            if cb1 is not None:
                cb1(event)
                if cbs is not None:
                    for callback in cbs:
                        callback(event)
            elif (event._ok is False and isinstance(event, Process)
                    and not isinstance(event._value, Interrupt)):
                raise event._value
        elif kind == _KIND_DELAY:
            process, token = payload
            if process._wait_token == token:
                process._step(True, None)
        elif kind == _KIND_RESUME:
            process, ok, value = payload
            process._step(ok, value)
        else:  # _KIND_CALL
            payload()

    def step(self) -> None:
        """Process the next scheduled entry.

        A failed :class:`Process` that nobody joined re-raises here —
        silent death of a model process (a NIC pipeline, a scheduler core)
        is always a bug, never intended behaviour.
        """
        if self._l0 is None:
            time, _seq, kind, payload = heappop(self._heap)
        else:
            entry = self._pop_wheel()
            if entry is None:
                raise IndexError("step on an empty schedule")
            time, _seq, kind, payload = entry
        if time < self.now:
            raise SimulationError("event queue corrupted: time went backwards")
        self.now = time
        self._dispatch(kind, payload)

    def _drain(self, limit: int, stop: Optional[Event]) -> None:
        if self._l0 is None:
            self._drain_heap(limit, stop)
        else:
            self._drain_wheel(limit, stop)

    def _drain_heap(self, limit: int, stop: Optional[Event]) -> None:
        """Dispatch heap entries until ``limit`` is passed, ``stop`` (if
        given) triggers, or the heap drains.

        This is :meth:`step`'s dispatch inlined into a single loop — the
        per-event method-call overhead is measurable at the event rates the
        figures run at.  Every scheduling path already rejects past times,
        so the corruption check lives only in the (non-inlined)
        :meth:`step`.
        """
        heap = self._heap
        pop = heappop
        while heap and heap[0][0] <= limit:
            if stop is not None and stop._value is not PENDING:
                return
            time, _seq, kind, payload = pop(heap)
            self.now = time
            if kind == _KIND_EVENT:
                cb1 = payload._cb1
                cbs = payload._cbs
                payload._cb1 = None
                payload._cbs = None
                payload._processed = True
                if cb1 is not None:
                    cb1(payload)
                    if cbs is not None:
                        for callback in cbs:
                            callback(payload)
                elif (payload._ok is False and isinstance(payload, Process)
                        and not isinstance(payload._value, Interrupt)):
                    raise payload._value
            elif kind == _KIND_DELAY:
                process, token = payload
                if process._wait_token == token:
                    process._step(True, None)
            elif kind == _KIND_RESUME:
                process, ok, value = payload
                process._step(ok, value)
            else:  # _KIND_CALL
                payload()

    def _drain_wheel(self, limit: int, stop: Optional[Event]) -> None:
        """The wheel's dispatch loop — :meth:`_drain_heap`'s contract on
        the hierarchical structure.

        Level-0 buckets are drained by index rather than by iterator so
        same-time entries scheduled *while the bucket dispatches* (event
        triggers, zero delays) are picked up in the same pass, in seq
        order — exactly the heap's behaviour at equal timestamps.
        """
        l0 = self._l0
        assert l0 is not None
        front = self._front
        while True:
            if front:
                time = front[0][0]
                if time > limit:
                    return
                if stop is not None and stop._value is not PENDING:
                    return
                _t, _s, kind, payload = heappop(front)
                self.now = time
                self._dispatch(kind, payload)
                continue
            occ = self._l0_occ
            if occ:
                lsb = occ & -occ
                idx = lsb.bit_length() - 1
                time = self._l0_block | idx
                if time > limit:
                    return
                if stop is not None and stop._value is not PENDING:
                    return
                self.now = time
                bucket = l0[idx]
                while len(bucket) == 1:
                    # Single-entry bucket (the dominant case in sparse
                    # regions): consume the entry before dispatching so a
                    # same-time insert during dispatch re-arms the slot,
                    # then keep looping on the slot while it does (event
                    # ping-pong at one timestamp) instead of paying the
                    # occupancy rescan per entry.  Dispatch can only insert
                    # at ``time >= now``, and same-block later times map to
                    # higher slots, so a re-armed ``idx`` stays the minimum.
                    _t, _s, kind, payload = bucket[0]
                    bucket.clear()
                    # The slot bit is always set on entry here (initially
                    # from the occupancy scan, afterwards re-armed by
                    # ``_schedule``), so xor clears it without the ``~``.
                    self._l0_occ ^= lsb
                    if kind == _KIND_EVENT:
                        cb1 = payload._cb1
                        cbs = payload._cbs
                        payload._cb1 = None
                        payload._cbs = None
                        payload._processed = True
                        if cb1 is not None:
                            cb1(payload)
                            if cbs is not None:
                                for callback in cbs:
                                    callback(payload)
                        elif (payload._ok is False
                                and isinstance(payload, Process)
                                and not isinstance(payload._value, Interrupt)):
                            raise payload._value
                    elif kind == _KIND_DELAY:
                        process, token = payload
                        if process._wait_token == token:
                            process._step(True, None)
                    elif kind == _KIND_RESUME:
                        process, ok, value = payload
                        process._step(ok, value)
                    else:  # _KIND_CALL
                        payload()
                    if not bucket:
                        break
                    if stop is not None and stop._value is not PENDING:
                        return
                if not bucket:
                    continue
                i = 0
                try:
                    while True:
                        _t, _s, kind, payload = bucket[i]
                        i += 1
                        if kind == _KIND_EVENT:
                            cb1 = payload._cb1
                            cbs = payload._cbs
                            payload._cb1 = None
                            payload._cbs = None
                            payload._processed = True
                            if cb1 is not None:
                                cb1(payload)
                                if cbs is not None:
                                    for callback in cbs:
                                        callback(payload)
                            elif (payload._ok is False
                                    and isinstance(payload, Process)
                                    and not isinstance(payload._value, Interrupt)):
                                raise payload._value
                        elif kind == _KIND_DELAY:
                            process, token = payload
                            if process._wait_token == token:
                                process._step(True, None)
                        elif kind == _KIND_RESUME:
                            process, ok, value = payload
                            process._step(ok, value)
                        else:  # _KIND_CALL
                            payload()
                        if i >= len(bucket):
                            break
                        if stop is not None and stop._value is not PENDING:
                            return
                        if i >= 4096 and 2 * i >= len(bucket):
                            # Compact once at least half the bucket is
                            # dispatched (amortized O(1) per entry) so a
                            # same-time chain that appends as fast as it
                            # drains doesn't pin every dispatched tuple
                            # live — that turns into GC pressure the heap
                            # scheduler (which frees on pop) never pays.
                            del bucket[:i]
                            i = 0
                finally:
                    # Keep anything not yet dispatched (stop/limit return,
                    # or an escaping process failure) scheduled.
                    del bucket[:i]
                    if not bucket:
                        self._l0_occ &= ~lsb
                continue
            if not self._promote(limit):
                return

    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        If ``until`` is given the clock is advanced to exactly ``until`` even
        when the queue drains earlier, so back-to-back ``run`` calls compose.
        """
        if until is None:
            self._drain(_T_MAX, None)
            return
        until = int(until)
        if until < self.now:
            raise SimulationError(f"cannot run to the past ({until} < {self.now})")
        self._drain(until, None)
        self.now = until

    def run_until(self, event: Event, deadline: Optional[int] = None) -> None:
        """Run until ``event`` triggers (or the clock would pass
        ``deadline``, or the queue drains).

        Unlike ``run(until=...)`` this stops as soon as the event fires, so
        background load (tenant threads, pollers) does not keep the clock
        spinning after the measured work completes.  The clock is left at
        the last processed entry — it does *not* advance to ``deadline``.
        """
        self._drain(_T_MAX if deadline is None else int(deadline), event)

    def peek(self) -> Optional[int]:
        """Time of the next queued event, or None if the queue is empty."""
        if self._l0 is None:
            return self._heap[0][0] if self._heap else None
        if self._front:
            return self._front[0][0]
        occ = self._l0_occ
        if occ:
            return self._l0_block | ((occ & -occ).bit_length() - 1)
        occ = self._l1_occ
        if occ:
            idx = (occ & -occ).bit_length() - 1
            return min(entry[0] for entry in self._l1[idx])
        return self._heap[0][0] if self._heap else None
