"""Discrete-event simulation kernel.

This module provides the event loop that every simulated component in the
reproduction (NICs, CPUs, links, storage processes) runs on.  The design
follows the classic process-interaction style popularised by SimPy: model
logic is written as Python generator functions ("processes") that ``yield``
events; the engine suspends the process until the event fires and resumes it
with the event's value.

Simulated time is kept in integer **nanoseconds** to avoid floating-point
drift when summing many small delays.  Helpers for converting between units
live in :mod:`repro.sim.units`.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(1000)
...     return sim.now
>>> proc = sim.process(hello(sim))
>>> sim.run()
>>> proc.value
1000
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation API (double trigger, etc.)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


PENDING = object()


class Event:
    """A happening at a point in simulated time.

    Events start *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers them, which schedules their callbacks to run at the current
    simulation time.  A process that ``yield``\\ s an untriggered event is
    suspended until the event triggers.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._queue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A process yielding on this event will have ``exception`` raised at
        the ``yield`` statement.
        """
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._queue(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event was already processed the callback runs immediately —
        this keeps late subscribers from deadlocking.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires after a fixed delay."""

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._ok = True
        self._value = value
        self.delay = delay
        sim._queue(self, delay=delay)


class Process(Event):
    """A running model process wrapping a generator.

    The process is itself an event: it triggers when the generator returns
    (successfully, with the generator's return value) or raises (a failure
    carrying the exception).  This makes ``yield other_process`` a join.
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off the process at the current time.
        bootstrap = Event(sim)
        bootstrap._ok = True
        bootstrap._value = None
        bootstrap.callbacks = []
        bootstrap.add_callback(self._resume)
        sim._queue(bootstrap)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        twice before it handles the first interrupt queues both.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        poke = Event(self.sim)
        poke._ok = False
        poke._value = Interrupt(cause)
        poke.callbacks = []
        poke.add_callback(self._resume)
        self.sim._queue(poke)

    def _resume(self, trigger: Event) -> None:
        if self.triggered:
            return  # Process already finished (e.g. interrupted earlier).
        # Detach from whatever we were waiting on so stale triggers from a
        # superseded wait (after an interrupt) do not double-resume us.
        if self._waiting_on is not None and trigger is not self._waiting_on \
                and not isinstance(trigger._value, Interrupt):
            return
        self._waiting_on = None
        self.sim._active_process = self
        try:
            if trigger._ok:
                target = self.generator.send(trigger._value)
            else:
                target = self.generator.throw(trigger._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        self.sim._active_process = None
        if not isinstance(target, Event):
            # Give the process a chance to handle the misuse; otherwise it
            # fails with the SimulationError.
            error = SimulationError(
                f"process {self.name} yielded non-event {target!r}")
            try:
                self.generator.throw(error)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as exc:
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                self.fail(exc)
            else:
                self.fail(error)
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class AllOf(Event):
    """Triggers when all child events have triggered successfully.

    The value is a list of child values in the order given.  If any child
    fails, this event fails with that child's exception (first failure wins).
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self.events])


class AnyOf(Event):
    """Triggers when the first child event triggers.

    The value is a ``(event, value)`` pair identifying the winner.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._ok:
            self.succeed((event, event._value))
        else:
            self.fail(event._value)


class Simulator:
    """The event loop: a clock plus a priority queue of triggered events."""

    def __init__(self):
        self.now: int = 0
        self._heap: List = []
        self._seq = 0  # Tie-breaker preserving FIFO order at equal times.
        self._active_process: Optional[Process] = None

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event firing ``delay`` nanoseconds from now."""
        return Timeout(self, int(delay), value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a model process from a generator."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling & execution
    # ------------------------------------------------------------------
    def _queue(self, event: Event, delay: int = 0) -> None:
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))
        self._seq += 1

    def call_at(self, time: int, fn: Callable[[], None]) -> None:
        """Run a plain callable at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self.now})")
        marker = Event(self)
        marker._ok = True
        marker._value = None
        marker.add_callback(lambda _event: fn())
        heapq.heappush(self._heap, (time, self._seq, marker))
        self._seq += 1

    def step(self) -> None:
        """Process the next queued event.

        A failed :class:`Process` that nobody joined re-raises here —
        silent death of a model process (a NIC pipeline, a scheduler core)
        is always a bug, never intended behaviour.
        """
        time, _seq, event = heapq.heappop(self._heap)
        if time < self.now:
            raise SimulationError("event queue corrupted: time went backwards")
        self.now = time
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if (isinstance(event, Process) and event._ok is False
                and not callbacks
                and not isinstance(event._value, Interrupt)):
            raise event._value

    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        If ``until`` is given the clock is advanced to exactly ``until`` even
        when the queue drains earlier, so back-to-back ``run`` calls compose.
        """
        if until is None:
            while self._heap:
                self.step()
            return
        until = int(until)
        if until < self.now:
            raise SimulationError(f"cannot run to the past ({until} < {self.now})")
        while self._heap and self._heap[0][0] <= until:
            self.step()
        self.now = until

    def peek(self) -> Optional[int]:
        """Time of the next queued event, or None if the queue is empty."""
        return self._heap[0][0] if self._heap else None
