"""Multi-core CPU model with a CFS-like per-core scheduler.

The paper's root-cause analysis (§2.2) is that replica threads in a
multi-tenant storage server must *wait to be scheduled* before they can
receive, parse and forward a replicated transaction, and that this
scheduling delay — not the network — inflates tail latency.  To reproduce
Figures 2, 8, 10, 11 and 12 that delay must be an emergent property of a
credible scheduler, so this module implements the load-bearing parts of
Linux CFS:

* **per-core run queues** — a woken thread is *placed* on one core (an idle
  core if there is one, else the core it last ran on, for cache affinity)
  and waits in that core's queue; other cores do not serve it.  This is the
  mechanism behind multi-millisecond wakeup delays in multi-tenant servers:
  with ten CPU-bound tenants sharing the woken thread's core, the wakeup
  must wait out the current timeslice (and occasionally several);
* **vruntime fairness** — each core picks its lowest-vruntime runnable
  thread and runs it for ``timeslice = max(min_granularity,
  sched_latency / nr_local_runnable)``;
* **sleeper bonus** — a thread that slept has its vruntime lifted to at
  most ``core.min_vruntime - sleeper_bonus`` on wakeup, so it is usually
  first in its queue; a thread that runs more than its fair share loses
  this advantage and round-robins with the tenants (bursty handlers under
  load — exactly when tails explode);
* **wakeup-granularity preemption** — the wakee preempts the running thread
  only when its vruntime is smaller by more than ``wakeup_granularity``;
  otherwise it waits for the timeslice to end;
* **new-idle balancing** — a core that goes idle steals a runnable thread
  from the longest queue;
* every switch of the thread a core runs costs ``context_switch_ns`` and
  increments a context-switch counter (reported in Figure 2).

Threads request CPU service with :meth:`Thread.run`; CPU-bound tenants call
:meth:`Thread.run_forever`.  Poll-mode consumers use
:meth:`Thread.when_running` to learn when the polling thread next owns a
core.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from operator import index as operator_index
from enum import Enum
from typing import List, Optional, Tuple

from .engine import Event, ProcessGenerator, Simulator
from .stats import Counter
from .units import us

__all__ = ["SchedParams", "ThreadState", "Thread", "HostCPU"]

INFINITE = float("inf")


@dataclass(slots=True)
class SchedParams:
    """Scheduler tunables, roughly mirroring Linux CFS server defaults."""

    sched_latency_ns: int = us(6000)        # Target rotation period (6 ms).
    min_granularity_ns: int = us(750)       # Minimum timeslice (0.75 ms).
    wakeup_granularity_ns: int = us(1000)   # Preemption hysteresis (1 ms).
    # Gentle sleeper credit, deliberately below the wakeup granularity: a
    # woken thread is usually *queued first* rather than preempting — it
    # pays out the current slice, and queues behind other fresh wakers.
    sleeper_bonus_ns: int = us(900)
    max_carried_lag_ns: int = us(6000)      # Positive lag kept on re-enqueue.
    context_switch_ns: int = us(2)          # Direct + indirect switch cost.

    def timeslice(self, nr_runnable: int) -> int:
        """Timeslice for one of ``nr_runnable`` threads on one core."""
        if nr_runnable <= 0:
            return self.sched_latency_ns
        share = self.sched_latency_ns // nr_runnable
        return max(self.min_granularity_ns, share)


class ThreadState(Enum):
    BLOCKED = "blocked"
    RUNNABLE = "runnable"
    RUNNING = "running"


@dataclass(slots=True)
class _WorkItem:
    remaining_ns: float
    done: Optional[Event]


class Thread:
    """A schedulable entity on a :class:`HostCPU`.

    Model code never runs "inside" a thread; instead it asks the thread for
    CPU service and waits on the returned event.  This keeps the scheduler
    model decoupled from protocol logic.
    """

    __slots__ = ("cpu", "name", "state", "vruntime", "cpu_time_ns",
                 "switches_in", "last_core", "_work", "_on_running")

    def __init__(self, cpu: "HostCPU", name: str) -> None:
        self.cpu = cpu
        self.name = name
        self.state = ThreadState.BLOCKED
        self.vruntime: float = 0.0
        self.cpu_time_ns: int = 0
        self.switches_in: int = 0
        self.last_core: Optional["_Core"] = None
        self._work: Optional[_WorkItem] = None
        self._on_running: List[Event] = []

    # ------------------------------------------------------------------
    # Service requests
    # ------------------------------------------------------------------
    def run(self, service_ns: int) -> Event:
        """Request ``service_ns`` of CPU time; event fires when delivered.

        The elapsed wall-clock time between the call and the event includes
        run-queue waiting, context switches and preemption by other threads.
        """
        if self._work is not None:
            raise RuntimeError(f"thread {self.name} already has work outstanding")
        try:
            service_ns = operator_index(service_ns)
        except TypeError:
            # A fractional service time would leave remaining_ns short of
            # every integer boundary, so ``int(min(slice_ns, remaining))``
            # in the core loop truncates to a zero-length timeslice and
            # the scheduler livelocks at one timestamp.
            raise TypeError(
                f"service_ns must be a whole number of ns, got "
                f"{type(service_ns).__name__}: {service_ns!r}") from None
        if service_ns < 0:
            raise ValueError("service time must be non-negative")
        done = self.cpu.sim.event()
        if service_ns == 0:
            done.succeed()
            return done
        self._work = _WorkItem(remaining_ns=float(service_ns), done=done)
        self.cpu._wake(self)
        return done

    def run_forever(self) -> None:
        """Turn this thread into a CPU-bound busy loop (background tenant)."""
        if self._work is not None:
            raise RuntimeError(f"thread {self.name} already has work outstanding")
        self._work = _WorkItem(remaining_ns=INFINITE, done=None)
        self.cpu._wake(self)

    def stop(self) -> None:
        """Cancel outstanding work (used to tear down busy loops)."""
        self._work = None
        if self.state is ThreadState.RUNNABLE and self.last_core is not None:
            self.last_core.unqueue(self)
            self.state = ThreadState.BLOCKED
        elif self.state is ThreadState.RUNNING and self.last_core is not None \
                and self.last_core.current is self:
            # Kick the core so it does not run out the rest of the slice
            # on a dead thread.
            self.last_core.preempt_now()

    def when_running(self) -> Event:
        """Event firing the next time this thread is scheduled onto a core.

        Fires immediately if the thread is running right now.  Used to model
        poll-mode completion detection: a poller only observes a completion
        while it owns a core.
        """
        event = self.cpu.sim.event()
        if self.state is ThreadState.RUNNING:
            event.succeed()
        else:
            self._on_running.append(event)
        return event

    @property
    def is_busy_loop(self) -> bool:
        return (self._work is not None
                and math.isinf(self._work.remaining_ns))


class _Core:
    """One CPU core: its own run queue, serving lowest-vruntime first."""

    __slots__ = ("cpu", "index", "current", "last_thread", "busy_ns",
                 "slice_start", "min_vruntime", "_queue", "_seq",
                 "_preempt", "_idle_wakeup")

    def __init__(self, cpu: "HostCPU", index: int) -> None:
        self.cpu = cpu
        self.index = index
        self.current: Optional[Thread] = None
        self.last_thread: Optional[Thread] = None
        self.busy_ns: int = 0
        self.slice_start: Optional[int] = None
        self.min_vruntime: float = 0.0
        self._queue: List[Tuple[float, int, Thread]] = []  # (vruntime, seq, thread) heap.
        self._seq = 0
        self._preempt: Optional[Event] = None
        self._idle_wakeup: Optional[Event] = None
        cpu.sim.process(self._loop(), name=f"{cpu.name}.core{index}")

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------
    @property
    def nr_queued(self) -> int:
        return len(self._queue)

    @property
    def is_idle(self) -> bool:
        return self.current is None and self._idle_wakeup is not None

    def enqueue(self, thread: Thread) -> None:
        thread.last_core = self
        heapq.heappush(self._queue, (thread.vruntime, self._seq, thread))
        self._seq += 1
        if self._idle_wakeup is not None and not self._idle_wakeup.triggered:
            self._idle_wakeup.succeed()

    def unqueue(self, thread: Thread) -> None:
        self._queue = [entry for entry in self._queue if entry[2] is not thread]
        heapq.heapify(self._queue)

    def pop_next(self) -> Optional[Thread]:
        while self._queue:
            _v, _s, thread = heapq.heappop(self._queue)
            if thread.state is ThreadState.RUNNABLE and thread._work is not None:
                return thread
        return None

    def steal_candidate(self) -> Optional[Thread]:
        """Give up one queued thread to an idle core (new-idle balance)."""
        return self.pop_next()

    def note_vruntime(self, vruntime: float) -> None:
        floor = vruntime
        if self._queue:
            floor = min(floor, self._queue[0][0])
        if floor > self.min_vruntime:
            self.min_vruntime = floor

    def preempt_now(self) -> None:
        """Unconditionally end the current slice (thread teardown)."""
        if self._preempt is not None and not self._preempt.triggered:
            self._preempt.succeed()

    def maybe_preempt(self, challenger: Thread) -> bool:
        """Preempt the running thread if the challenger is far enough ahead."""
        if self.current is None or self._preempt is None or self._preempt.triggered:
            return False
        gap = self.current.vruntime - challenger.vruntime
        if gap > self.cpu.params.wakeup_granularity_ns:
            self._preempt.succeed()
            return True
        return False

    # ------------------------------------------------------------------
    # Execution loop
    # ------------------------------------------------------------------
    def _loop(self) -> ProcessGenerator:
        sim = self.cpu.sim
        params = self.cpu.params
        while True:
            thread = self.pop_next()
            if thread is None:
                thread = self.cpu._steal_for(self)
            if thread is None:
                self._idle_wakeup = sim.event()
                yield self._idle_wakeup
                self._idle_wakeup = None
                continue
            if thread is not self.last_thread:
                self.cpu.context_switches.increment()
                thread.switches_in += 1
                cost = params.context_switch_ns
                if cost:
                    self.busy_ns += cost
                    yield cost  # bare-delay fast path (engine)
                    if thread._work is None:  # Cancelled mid-switch.
                        thread.state = ThreadState.BLOCKED
                        self.last_thread = thread
                        continue
            self.current = thread
            self.last_thread = thread
            thread.state = ThreadState.RUNNING
            thread.last_core = self
            for event in thread._on_running:
                if not event.triggered:
                    event.succeed()
            thread._on_running = []

            work = thread._work
            slice_ns = params.timeslice(self.nr_queued + 1)
            run_ns = int(min(slice_ns, work.remaining_ns))
            # run() rejects fractional service times precisely so this
            # holds: a zero-length timeslice would re-run this loop at the
            # same timestamp forever.
            assert run_ns > 0, (
                f"zero-length timeslice for {thread.name} "
                f"(remaining={work.remaining_ns!r}, slice={slice_ns})")
            start = sim.now
            self.slice_start = start
            # One wake event serves both slice expiry and preemption —
            # cheaper than Timeout + AnyOf in the hottest scheduler loop.
            # A stale expiry callback after preemption is a no-op.
            self._preempt = wake = sim.event()
            sim.call_at(start + run_ns,
                        lambda w=wake: None if w.triggered else w.succeed())
            yield wake
            ran = sim.now - start
            self._preempt = None
            self.slice_start = None

            thread.vruntime += ran
            thread.cpu_time_ns += ran
            self.busy_ns += ran
            self.note_vruntime(thread.vruntime)
            self.current = None

            if thread._work is None:
                # Cancelled while running.
                thread.state = ThreadState.BLOCKED
                continue
            work.remaining_ns -= ran
            if work.remaining_ns <= 0:
                thread._work = None
                thread.state = ThreadState.BLOCKED
                if work.done is not None:
                    work.done.succeed()
            else:
                thread.state = ThreadState.RUNNABLE
                self.enqueue(thread)


class HostCPU:
    """A multi-core host processor shared by all threads of a machine."""

    __slots__ = ("sim", "name", "params", "context_switches", "threads",
                 "_placement_rr", "cores")

    def __init__(self, sim: Simulator, cores: int,
                 params: Optional[SchedParams] = None,
                 name: str = "cpu") -> None:
        if cores < 1:
            raise ValueError("need at least one core")
        self.sim = sim
        self.name = name
        self.params = params or SchedParams()
        self.context_switches = Counter(f"{name}.ctxsw")
        self.threads: List[Thread] = []
        self._placement_rr = 0
        self.cores = [_Core(self, i) for i in range(cores)]

    # ------------------------------------------------------------------
    # Thread management
    # ------------------------------------------------------------------
    def spawn_thread(self, name: str) -> Thread:
        thread = Thread(self, name)
        self.threads.append(thread)
        return thread

    def spawn_background_load(self, count: int, name: str = "tenant") -> List[Thread]:
        """Start ``count`` CPU-bound tenant threads (multi-tenant pressure)."""
        tenants = []
        for i in range(count):
            thread = self.spawn_thread(f"{name}{i}")
            thread.run_forever()
            tenants.append(thread)
        return tenants

    # ------------------------------------------------------------------
    # Scheduler internals
    # ------------------------------------------------------------------
    def _place(self, thread: Thread) -> "_Core":
        """Pick the core a waking thread lands on.

        Idle cores win (select_idle_sibling); otherwise the thread returns
        to its previous core for cache affinity — and waits in that core's
        queue, which is where multi-tenant scheduling delay comes from.
        """
        for core in self.cores:
            if core.is_idle and not core._queue:
                return core
        if thread.last_core is not None:
            return thread.last_core
        core = self.cores[self._placement_rr % len(self.cores)]
        self._placement_rr += 1
        return core

    def _wake(self, thread: Thread) -> None:
        """Blocked → runnable: place, apply sleeper bonus, maybe preempt."""
        if thread.state is not ThreadState.BLOCKED:
            return
        core = self._place(thread)
        # Renormalize vruntime into the target core's clock, carrying over
        # bounded positive lag (a thread that over-ran its share re-enters
        # behind the pack) and granting at most the sleeper bonus.
        old_min = (thread.last_core.min_vruntime
                   if thread.last_core is not None else thread.vruntime)
        lag = thread.vruntime - old_min
        lag = max(-float(self.params.sleeper_bonus_ns),
                  min(lag, float(self.params.max_carried_lag_ns)))
        thread.vruntime = core.min_vruntime + lag
        bonus_floor = core.min_vruntime - self.params.sleeper_bonus_ns
        if thread.vruntime < bonus_floor:
            thread.vruntime = bonus_floor
        thread.state = ThreadState.RUNNABLE
        core.enqueue(thread)
        core.maybe_preempt(thread)

    def _steal_for(self, idle_core: "_Core") -> Optional[Thread]:
        """New-idle balance: pull one thread from the longest queue."""
        busiest = max(self.cores, key=lambda core: core.nr_queued)
        if busiest.nr_queued == 0 or busiest is idle_core:
            return None
        thread = busiest.steal_candidate()
        if thread is not None:
            # Renormalize into the stealing core's clock.
            lag = thread.vruntime - busiest.min_vruntime
            thread.vruntime = idle_core.min_vruntime + max(0.0, min(
                lag, float(self.params.max_carried_lag_ns)))
            thread.last_core = idle_core
        return thread

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def nr_runnable(self) -> int:
        return sum(core.nr_queued for core in self.cores)

    def total_busy_ns(self) -> int:
        """Busy time including the in-flight portion of current slices."""
        total = 0
        for core in self.cores:
            total += core.busy_ns
            if core.slice_start is not None:
                total += self.sim.now - core.slice_start
        return total

    def thread_cpu_time_ns(self, thread: Thread) -> int:
        """CPU time including the thread's in-flight slice, if running."""
        total = thread.cpu_time_ns
        core = thread.last_core
        if (thread.state is ThreadState.RUNNING and core is not None
                and core.current is thread and core.slice_start is not None):
            total += self.sim.now - core.slice_start
        return total

    def utilization(self, window_ns: int) -> float:
        """Mean per-core utilization over ``window_ns``."""
        if window_ns <= 0:
            raise ValueError("window must be positive")
        return min(1.0, self.total_busy_ns() / (window_ns * len(self.cores)))

    def thread_utilization(self, thread: Thread, window_ns: int) -> float:
        """Fraction of one core consumed by a single thread."""
        if window_ns <= 0:
            raise ValueError("window must be positive")
        return min(1.0, self.thread_cpu_time_ns(thread) / window_ns)
