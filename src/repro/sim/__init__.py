"""Discrete-event simulation kernel: engine, CPU scheduler, RNG, statistics."""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .cpu import HostCPU, SchedParams, Thread, ThreadState
from .rng import (
    LatestGenerator,
    RandomStreams,
    ScrambledZipfianGenerator,
    ZipfianGenerator,
)
from .stats import Counter, LatencyRecorder, UtilizationTracker, summarize_us
from . import units

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "HostCPU",
    "SchedParams",
    "Thread",
    "ThreadState",
    "RandomStreams",
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "LatestGenerator",
    "Counter",
    "LatencyRecorder",
    "UtilizationTracker",
    "summarize_us",
    "units",
]
