"""Structured event tracing for simulated components.

Components emit typed trace events into a :class:`Tracer`; analyses slice
them by operation, component or kind.  The NIC and group layers emit
events when a tracer is installed on the cluster (see
:meth:`repro.host.Cluster.enable_tracing`), which powers the
``examples/latency_breakdown.py`` tool: where do the ~10 µs of a gWRITE
actually go?

Tracing is strictly opt-in and zero-cost when disabled (the emit helpers
short-circuit on a None tracer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

__all__ = ["TraceEvent", "Tracer", "span_durations"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timestamped happening."""

    time_ns: int
    component: str     # e.g. "replica1.nic", "group0.client"
    kind: str          # e.g. "wqe.execute", "msg.rx", "op.submit"
    detail: str = ""
    op_slot: int = -1  # Group-operation slot, when attributable.


class Tracer:
    """An append-only event log with simple query helpers."""

    __slots__ = ("capacity", "events", "dropped")

    def __init__(self, capacity: int = 1_000_000) -> None:
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def emit(self, time_ns: int, component: str, kind: str,
             detail: str = "", op_slot: int = -1) -> None:
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time_ns, component, kind, detail,
                                      op_slot))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def by_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def by_component(self, prefix: str) -> List[TraceEvent]:
        return [event for event in self.events
                if event.component.startswith(prefix)]

    def for_slot(self, op_slot: int) -> List[TraceEvent]:
        return sorted((event for event in self.events
                       if event.op_slot == op_slot),
                      key=lambda event: event.time_ns)

    def kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0


def span_durations(events: Iterable[TraceEvent]) -> List[Tuple[str, int]]:
    """Turn a slot's ordered event list into (stage, duration_ns) spans.

    Each span runs from one event to the next; the last event has no span.
    """
    ordered = sorted(events, key=lambda event: event.time_ns)
    spans: List[Tuple[str, int]] = []
    for current, following in zip(ordered, ordered[1:]):
        label = f"{current.component}:{current.kind}"
        spans.append((label, following.time_ns - current.time_ns))
    return spans
