"""Naïve-RDMA baseline: CPU-forwarded group primitives (the paper's comparison point)."""

from .naive import HEADER_SIZE, NaiveConfig, NaiveGroup

__all__ = ["HEADER_SIZE", "NaiveConfig", "NaiveGroup"]
