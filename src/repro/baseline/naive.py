"""Naïve-RDMA: the paper's baseline implementation of the group primitives.

Same API and chain topology as :class:`repro.core.group.HyperLoopGroup`, but
"involves backup CPUs to handle receiving, parsing, and forwarding RDMA
messages" (§6): each replica runs a software handler thread that must be
*scheduled onto a CPU core* for every hop of every operation.  Under
multi-tenant load that scheduling delay is the source of the 2–3 orders of
magnitude tail-latency gap the paper reports.

Two completion-detection modes, matching §6.2's RocksDB comparison:

* ``event``   — the handler blocks on a completion channel; each message
  costs a wakeup (run-queue wait + context switch) before it is handled.
* ``polling`` — a dedicated busy-polling thread detects completions only
  while it owns a core.  With more pollers than cores (the multi-tenant
  co-location of Figure 11) pollers time-share and polling gets *worse*
  than event mode.

Wire protocol per hop: an RDMA WRITE carries the payload straight into the
replica's region (for gWRITE), then a SEND carries a fixed header (+ the
running result map).  The replica CPU parses the header, performs the local
work (memcpy for gMEMCPY, compare-and-swap for gCAS), and re-posts the same
pair toward the next node.  The tail ACKs the client with WRITE_WITH_IMM.
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass
from typing import Optional, Sequence

from ..backend.base import GroupBase
from ..backend.ops import OpKind, OpSpec
from ..backend.registry import register
from ..core.readpath import ClientReadPath
from ..host import Host
from ..rdma.verbs import Access
from ..rdma.wqe import Opcode, Sge, WorkRequest

__all__ = ["NaiveConfig", "NaiveGroup", "HEADER_SIZE"]

HEADER_SIZE = 64
_HEADER = struct.Struct("<BBBxIQIQQQQI")
# kind, durable, hop, slot, offset, size, src, dst, old, new, exec_map

_KIND_CODE = {OpKind.GWRITE: 0, OpKind.GCAS: 1, OpKind.GMEMCPY: 2,
              OpKind.GFLUSH: 3}
_CODE_KIND = {v: k for k, v in _KIND_CODE.items()}


def encode_header(op: OpSpec, slot: int, hop: int, group_size: int,
                  exec_map_bits: Optional[int] = None) -> bytes:
    if exec_map_bits is not None:
        exec_map = exec_map_bits
    elif op.execute_map is not None:
        exec_map = 0
        for i, bit in enumerate(op.execute_map):
            if bit:
                exec_map |= 1 << i
    elif op.kind is OpKind.GCAS:
        exec_map = (1 << group_size) - 1
    else:
        exec_map = 0
    header = _HEADER.pack(_KIND_CODE[op.kind], int(op.durable), hop,
                          slot & 0xFFFFFFFF, op.offset, op.size,
                          op.src_offset, op.dst_offset,
                          op.old_value, op.new_value, exec_map)
    return header.ljust(HEADER_SIZE, b"\0")


def decode_header(data: bytes):
    (kind_code, durable, hop, slot, offset, size, src, dst, old, new,
     exec_map) = _HEADER.unpack_from(data, 0)
    op = OpSpec(_CODE_KIND[kind_code], offset=offset, size=size,
                src_offset=src, dst_offset=dst, old_value=old,
                new_value=new, durable=bool(durable))
    return op, slot, hop, exec_map


@dataclass
class NaiveConfig:
    """Tunables for the Naïve-RDMA baseline."""

    region_size: int = 16 << 20
    slots: int = 512
    mode: str = "event"              # Replica detection: "event" | "polling".
    client_mode: str = "polling"     # Client ACK detection (pinned core).
    handler_parse_ns: int = 700      # Parse header + bookkeeping per message.
    handler_post_ns: int = 200       # Per posted work request.
    memcpy_bytes_per_ns: float = 16.0
    cas_ns: int = 120
    build_ns: int = 500              # Client-side request construction.
    post_ns: int = 100
    poll_overhead_ns: int = 150
    ack_dispatch_ns: int = 700       # Client-side ACK handling per batch.
    event_wakeup_service_ns: int = 0  # Extra beyond parse/post costs.


class _NaiveReplica:
    """One replica's software datapath: QPs, buffers, and handler thread."""

    def __init__(self, host: Host, group: "NaiveGroup", hop: int):
        self.host = host
        self.group = group
        self.hop = hop
        config = group.config
        self.name = f"{group.name}.r{hop}"
        memory, nic = host.memory, host.nic
        self.region = memory.allocate(config.region_size, f"{self.name}.region")
        self.region_mr = nic.register_mr(
            self.region.address, self.region.size,
            Access.LOCAL_WRITE | Access.REMOTE_WRITE | Access.REMOTE_READ,
            name=f"{self.name}.region")
        stride = HEADER_SIZE + 8 * group.group_size
        self.msg_stride = stride
        self.msg_buf = memory.allocate(stride * config.slots, f"{self.name}.msgs")
        self.up_cq = nic.create_cq(with_channel=True, name=f"{self.name}.upcq")
        self.down_cq = nic.create_cq(name=f"{self.name}.downcq")
        self.qp_up = nic.create_qp(self.down_cq, self.up_cq,
                                   sq_slots=8, rq_slots=config.slots + 8,
                                   name=f"{self.name}.up")
        self.qp_down = nic.create_qp(self.down_cq, self.down_cq,
                                     sq_slots=4 * config.slots + 16,
                                     rq_slots=8, name=f"{self.name}.down")
        self.thread = host.spawn_thread(f"{self.name}.handler")
        self.poller = None
        if config.mode == "polling":
            self.poller = host.spawn_thread(f"{self.name}.poller")
            self.poller.run_forever()
        for slot in range(config.slots):
            self._post_recv(slot)
        host.sim.process(self._handler(), name=f"{self.name}.handler")

    def msg_addr(self, slot: int) -> int:
        return self.msg_buf.address + (slot % self.group.config.slots) \
            * self.msg_stride

    def _post_recv(self, slot: int) -> None:
        self.qp_up.post_recv(WorkRequest(
            Opcode.RECV, [Sge(self.msg_addr(slot), self.msg_stride)],
            wr_id=slot))

    def _handler(self):
        """The per-replica datapath loop — this is what HyperLoop offloads."""
        sim = self.host.sim
        config = self.group.config
        channel = self.up_cq.channel
        next_slot = 0
        while True:
            self.up_cq.req_notify()
            yield channel.wait()
            work_items = []
            if self.poller is not None:
                # Poll mode: detection happens when the poller owns a core.
                yield self.poller.when_running()
                yield config.poll_overhead_ns  # bare-delay fast path
                work_items = self.up_cq.poll(64)
                service = self._service_cost(work_items)
                if service:
                    yield service  # bare-delay fast path
                self._apply_all(work_items)
            else:
                # Event mode: the handler must be scheduled before anything
                # happens — the run-queue wait is the latency killer.
                work_items = self.up_cq.poll(64)
                service = self._service_cost(work_items) \
                    + config.event_wakeup_service_ns
                yield self.thread.run(max(service, 1))
                self._apply_all(work_items)
            for _ in work_items:
                self._post_recv(next_slot + config.slots)
                next_slot += 1

    def _service_cost(self, work_items) -> int:
        config = self.group.config
        total = 0
        for wc in work_items:
            total += config.handler_parse_ns
            header = self.host.memory.read(self.msg_addr(wc.wr_id), HEADER_SIZE)
            op, _slot, _hop, _exec = decode_header(header)
            if op.kind is OpKind.GMEMCPY:
                total += int(op.size / config.memcpy_bytes_per_ns)
            elif op.kind is OpKind.GCAS:
                total += config.cas_ns
            posts = 2 + (1 if op.durable or op.kind is OpKind.GFLUSH else 0)
            total += posts * config.handler_post_ns
        return total

    def _apply_all(self, work_items) -> None:
        for wc in work_items:
            self._apply(wc)

    def _apply(self, wc) -> None:
        """Execute the op locally and forward it down the chain (CPU work;
        its cost was charged in :meth:`_service_cost`)."""
        memory = self.host.memory
        group = self.group
        config = group.config
        msg_addr = self.msg_addr(wc.wr_id)
        raw = memory.read(msg_addr, self.msg_stride)
        op, slot, hop, exec_map = decode_header(raw)
        result_base = msg_addr + HEADER_SIZE
        if op.kind is OpKind.GMEMCPY:
            memory.copy_within(self.region.address + op.src_offset,
                               self.region.address + op.dst_offset, op.size)
        elif op.kind is OpKind.GCAS and (exec_map >> self.hop) & 1:
            target = self.region.address + op.offset
            original = int.from_bytes(memory.read(target, 8), "little")
            if original == op.old_value:
                memory.write(target, op.new_value.to_bytes(8, "little"))
            memory.write(result_base + self.hop * 8,
                         original.to_bytes(8, "little"))
        is_tail = self.hop == group.group_size - 1
        durable = op.durable or op.kind is OpKind.GFLUSH
        if is_tail:
            # ACK the client with the result map.
            self.qp_down.post_send(WorkRequest(
                Opcode.WRITE_WITH_IMM,
                [Sge(result_base, 8 * group.group_size)],
                remote_addr=group.ack_addr(slot), rkey=group.ack_mr.rkey,
                imm=slot & 0xFFFFFFFF, signaled=False))
            return
        next_replica = group.replicas[self.hop + 1]
        if op.kind is OpKind.GWRITE and op.size > 0:
            self.qp_down.post_send(WorkRequest(
                Opcode.WRITE,
                [Sge(self.region.address + op.offset, op.size)],
                remote_addr=next_replica.region.address + op.offset,
                rkey=next_replica.region_mr.rkey, signaled=False))
        if durable:
            self.qp_down.post_send(WorkRequest(
                Opcode.READ, [Sge(0, 0)],
                remote_addr=next_replica.region.address,
                rkey=next_replica.region_mr.rkey, signaled=False))
        # Re-encode the header with the next hop index, preserving the
        # execute map; the result map bytes that follow are untouched.
        memory.write(msg_addr, encode_header(op, slot, self.hop + 1,
                                             group.group_size,
                                             exec_map_bits=exec_map))
        self.qp_down.post_send(WorkRequest(
            Opcode.SEND, [Sge(msg_addr, self.msg_stride)],
            signaled=False))


@register("naive", config_cls=NaiveConfig,
          description="CPU-forwarded chain replication (Naïve-RDMA baseline)")
class NaiveGroup(GroupBase):
    """Drop-in alternative to :class:`HyperLoopGroup` using CPU forwarding."""

    _ids = itertools.count()

    def __init__(self, client_host: Host, replica_hosts: Sequence[Host],
                 config: Optional[NaiveConfig] = None, name: str = ""):
        if not replica_hosts:
            raise ValueError("a group needs at least one replica")
        self.config = config or NaiveConfig()
        self.name = name or f"naive{next(NaiveGroup._ids)}"
        self.client_host = client_host
        self.sim = client_host.sim
        self.group_size = len(replica_hosts)
        self.replicas = [_NaiveReplica(host, self, hop)
                         for hop, host in enumerate(replica_hosts)]
        self._build_client_side()
        self._wire_chain()
        self._init_op_state()
        self._start_client_processes()
        self.read_path = ClientReadPath(client_host, self.replicas, self.name)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_client_side(self) -> None:
        config, memory, nic = self.config, self.client_host.memory, \
            self.client_host.nic
        self.region = memory.allocate(config.region_size, f"{self.name}.cregion")
        self.msg_stride = HEADER_SIZE + 8 * self.group_size
        self.msg_buf = memory.allocate(self.msg_stride * config.slots,
                                       f"{self.name}.msgs")
        self.ack_stride = 8 * self.group_size
        self.ack_buf = memory.allocate(self.ack_stride * config.slots,
                                       f"{self.name}.ack")
        self.ack_mr = nic.register_mr(
            self.ack_buf.address, self.ack_buf.size,
            Access.LOCAL_WRITE | Access.REMOTE_WRITE, name=f"{self.name}.ackmr")
        self.out_cq = nic.create_cq(name=f"{self.name}.outcq")
        self.ack_cq = nic.create_cq(with_channel=True, name=f"{self.name}.ackcq")
        self.qp_out = nic.create_qp(self.out_cq, self.out_cq,
                                    sq_slots=4 * config.slots + 16, rq_slots=8,
                                    name=f"{self.name}.out")
        self.qp_ack = nic.create_qp(self.ack_cq, self.ack_cq, sq_slots=8,
                                    rq_slots=config.slots + 8,
                                    name=f"{self.name}.ackqp")
        for _ in range(config.slots):
            self.qp_ack.post_recv(WorkRequest(Opcode.RECV, [], wr_id=0))

    def _wire_chain(self) -> None:
        self.qp_out.connect(self.replicas[0].qp_up)
        for prev, nxt in zip(self.replicas, self.replicas[1:]):
            prev.qp_down.connect(nxt.qp_up)
        self.replicas[-1].qp_down.connect(self.qp_ack)

    def _start_client_processes(self) -> None:
        self.submit_thread = self.client_host.spawn_thread(f"{self.name}.submit")
        self.ack_thread = self.client_host.spawn_thread(f"{self.name}.ackdisp")
        if self.config.client_mode == "polling":
            self.client_poller = self.client_host.spawn_thread(
                f"{self.name}.cpoller")
            self.client_poller.run_forever()
        else:
            self.client_poller = None
        self.sim.process(self._submitter(), name=f"{self.name}.submitter")
        self.sim.process(self._ack_dispatcher(), name=f"{self.name}.ackdisp")

    def ack_addr(self, slot: int) -> int:
        return self.ack_buf.address + (slot % self.config.slots) \
            * self.ack_stride

    def close(self) -> None:
        """Tear the group down and return every carved resource."""
        if not self._begin_close():
            return
        for replica in self.replicas:
            nic, memory = replica.host.nic, replica.host.memory
            nic.destroy_qp(replica.qp_up)
            nic.destroy_qp(replica.qp_down)
            nic.deregister_mr(replica.region_mr)
            memory.free(replica.region)
            memory.free(replica.msg_buf)
        nic, memory = self.client_host.nic, self.client_host.memory
        nic.destroy_qp(self.qp_out)
        nic.destroy_qp(self.qp_ack)
        nic.deregister_mr(self.ack_mr)
        for allocation in (self.region, self.msg_buf, self.ack_buf):
            memory.free(allocation)
        self.read_path.close()

    # ------------------------------------------------------------------
    # Client processes
    # ------------------------------------------------------------------
    def _submitter(self):
        config = self.config
        head = self.replicas[0]
        while True:
            op, done, slot = yield from self._dequeue()
            yield self.submit_thread.run(config.build_ns)
            msg_addr = self.msg_buf.address \
                + (slot % config.slots) * self.msg_stride
            self.client_host.memory.write(
                msg_addr, encode_header(op, slot, 0, self.group_size)
                + bytes(8 * self.group_size))
            posts = 1
            if op.kind is OpKind.GWRITE and op.size > 0:
                self.qp_out.post_send(WorkRequest(
                    Opcode.WRITE,
                    [Sge(self.region.address + op.offset, op.size)],
                    remote_addr=head.region.address + op.offset,
                    rkey=head.region_mr.rkey, signaled=False))
                posts += 1
            if op.kind is OpKind.GMEMCPY:
                self.client_host.memory.copy_within(
                    self.region.address + op.src_offset,
                    self.region.address + op.dst_offset, op.size)
            if op.durable or op.kind is OpKind.GFLUSH:
                self.qp_out.post_send(WorkRequest(
                    Opcode.READ, [Sge(0, 0)], remote_addr=head.region.address,
                    rkey=head.region_mr.rkey, signaled=False))
                posts += 1
            self.qp_out.post_send(WorkRequest(
                Opcode.SEND, [Sge(msg_addr, self.msg_stride)],
                wr_id=slot, signaled=False))
            yield self.submit_thread.run(posts * config.post_ns)

    def _ack_dispatcher(self):
        sim, config = self.sim, self.config
        channel = self.ack_cq.channel
        while True:
            self.ack_cq.req_notify()
            yield channel.wait()
            if self.client_poller is not None:
                yield self.client_poller.when_running()
                yield config.poll_overhead_ns  # bare-delay fast path
            else:
                yield self.ack_thread.run(config.ack_dispatch_ns)
            for wc in self.ack_cq.poll(64):
                if not wc.has_imm:
                    continue
                slot = wc.imm
                # Ordering matters for determinism: re-arm the RECV before
                # releasing window waiters (the re-post can schedule an
                # RNR-pending delivery).
                done = self._pop_acked(slot)
                self.qp_ack.post_recv(WorkRequest(Opcode.RECV, [], wr_id=0))
                self._release_window_waiters()
                if done is None or done.triggered:
                    continue
                result_map = self.client_host.memory.read(
                    self.ack_addr(slot), self.ack_stride)
                self._finish(done, slot, result_map)
