"""Open-loop load generation: latency vs offered throughput.

The paper's microbenchmarks are closed-loop; systems evaluation also
needs the open-loop view — fire operations at a Poisson arrival rate
regardless of completions, and watch the latency curve bend as offered
load approaches the service capacity.  This module provides that
generator plus a sweep helper used by
``benchmarks/bench_appendix_load.py`` (an extension figure, clearly
labeled as beyond the paper's tables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..sim.rng import exponential
from ..sim.stats import LatencyRecorder
from ..sim.units import seconds

__all__ = ["OpenLoopConfig", "OpenLoopResult", "open_loop_gwrite",
           "load_sweep", "span_throughput"]


def span_throughput(count: int, first_ns, last_ns) -> float:
    """Ops/sec of ``count`` completions over [first issue, last completion].

    The span runs from the earliest *issue* among the counted samples to
    the latest *completion* — the full wall interval the measured work
    occupied.  Returns 0.0 when there are no samples (or no span
    endpoints, which only happens together).
    """
    if not count or first_ns is None or last_ns is None:
        return 0.0
    return count / (max(1, last_ns - first_ns) / 1e9)


@dataclass
class OpenLoopConfig:
    rate_ops_per_sec: float = 50_000.0
    payload_bytes: int = 512
    operations: int = 2_000
    warmup_fraction: float = 0.1
    durable: bool = False
    max_outstanding: int = 4096   # Safety valve against infinite backlog.


@dataclass
class OpenLoopResult:
    offered_ops_per_sec: float
    achieved_ops_per_sec: float
    recorder: LatencyRecorder
    shed: int   # Arrivals dropped by the outstanding-ops safety valve.

    @property
    def saturated(self) -> bool:
        """Offered load exceeded what the system could absorb."""
        return (self.shed > 0
                or self.achieved_ops_per_sec
                < 0.9 * self.offered_ops_per_sec)


def open_loop_gwrite(group, config: OpenLoopConfig,
                     rng=None) -> OpenLoopResult:
    """Drive gWRITEs at a Poisson arrival rate; returns the result.

    Runs the simulation to completion of all issued operations (plus the
    arrival process), so call on a quiescent cluster.
    """
    sim = group.sim
    rng = rng or group.client_host.cluster.rng.stream("openloop")
    recorder = LatencyRecorder("openloop")
    mean_gap_ns = 1e9 / config.rate_ops_per_sec
    warmup = int(config.operations * config.warmup_fraction)
    state = {"issued": 0, "done": 0, "shed": 0,
             "first": None, "last": None,
             "all_first": None, "all_last": None}
    group.write_local(0, b"\xEE" * config.payload_bytes)
    finished = sim.event()

    def complete(result, index):
        state["done"] += 1
        # Completions can land out of order (slots ACK independently of
        # arrival order under retransmit/fan-out), so the span's start is
        # the *minimum* issue time over the counted samples — not the
        # issue time of whichever completion happened to arrive first.
        issued_at = sim.now - result.latency_ns
        if state["all_first"] is None or issued_at < state["all_first"]:
            state["all_first"] = issued_at
        state["all_last"] = sim.now
        if index >= warmup:
            recorder.record(result.latency_ns)
            if state["first"] is None or issued_at < state["first"]:
                state["first"] = issued_at
            state["last"] = sim.now
        if (state["done"] + state["shed"] == config.operations
                and not finished.triggered):
            finished.succeed()

    def arrivals():
        for index in range(config.operations):
            yield sim.timeout(max(1, int(exponential(rng, mean_gap_ns))))
            if group.in_flight >= config.max_outstanding:
                state["shed"] += 1
                if (state["done"] + state["shed"] == config.operations
                        and not finished.triggered):
                    finished.succeed()
                continue
            state["issued"] += 1
            event = group.gwrite(0, config.payload_bytes,
                                 durable=config.durable)
            event.add_callback(
                lambda e, i=index: complete(e.value, i))

    sim.process(arrivals(), name="openloop.arrivals")
    deadline = sim.now + seconds(600)
    while not finished.triggered and sim.peek() is not None \
            and sim.peek() <= deadline:
        sim.step()
    if not finished.triggered:
        raise RuntimeError(
            f"open-loop run stalled: {state['done']}/{config.operations}")
    achieved = span_throughput(recorder.count, state["first"],
                               state["last"])
    if not recorder.count and state["done"]:
        # Every completion fell inside warmup (tiny runs / large warmup
        # fractions): fall back to the all-completions span rather than
        # reporting zero throughput for work that demonstrably finished.
        achieved = span_throughput(state["done"], state["all_first"],
                                   state["all_last"])
    return OpenLoopResult(
        offered_ops_per_sec=config.rate_ops_per_sec,
        achieved_ops_per_sec=achieved,
        recorder=recorder,
        shed=state["shed"])


def load_sweep(make_group, rates: List[float],
               payload_bytes: int = 512,
               operations: int = 2_000) -> List[Dict]:
    """Latency-vs-offered-load curve: one fresh group per rate point."""
    rows = []
    for rate in rates:
        group = make_group()
        result = open_loop_gwrite(group, OpenLoopConfig(
            rate_ops_per_sec=rate, payload_bytes=payload_bytes,
            operations=operations))
        rows.append({
            "offered_kops": rate / 1e3,
            "achieved_kops": result.achieved_ops_per_sec / 1e3,
            "avg_us": result.recorder.mean_us(),
            "p99_us": result.recorder.percentile_us(99),
            "saturated": result.saturated,
        })
    return rows
