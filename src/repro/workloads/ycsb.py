"""YCSB core workloads (Table 3 of the paper).

The paper evaluates with the Yahoo Cloud Serving Benchmark's standard
mixes::

    Workload   Read  Update  Insert  Modify(RMW)  Scan
    A           50     50      -        -           -
    B           95      5      -        -           -
    D           95      -      5        -           -
    E            -      -      5        -          95
    F           50      -      -       50           -

(C — 100% read — is included for completeness.)  Request distributions
follow YCSB defaults: scrambled-zipfian for A/B/E/F, "latest" for D, and
uniform scan lengths for E.  Keys are dense integer ids; inserts grow the
keyspace, which the latest distribution tracks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, Optional

from ..sim.rng import LatestGenerator, ScrambledZipfianGenerator

__all__ = ["OpType", "WorkloadMix", "WORKLOAD_MIXES", "YCSBConfig",
           "YCSBOperation", "YCSBWorkload", "make_value"]


class OpType(Enum):
    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    MODIFY = "modify"   # read-modify-write
    SCAN = "scan"


@dataclass(frozen=True)
class WorkloadMix:
    """Operation proportions, in percent (they must sum to 100)."""

    read: int = 0
    update: int = 0
    insert: int = 0
    modify: int = 0
    scan: int = 0

    def __post_init__(self):
        total = self.read + self.update + self.insert + self.modify + self.scan
        if total != 100:
            raise ValueError(f"mix sums to {total}, not 100")

    def pick(self, rng: random.Random) -> OpType:
        roll = rng.random() * 100
        if roll < self.read:
            return OpType.READ
        roll -= self.read
        if roll < self.update:
            return OpType.UPDATE
        roll -= self.update
        if roll < self.insert:
            return OpType.INSERT
        roll -= self.insert
        if roll < self.modify:
            return OpType.MODIFY
        return OpType.SCAN


#: Table 3, verbatim.
WORKLOAD_MIXES: Dict[str, WorkloadMix] = {
    "A": WorkloadMix(read=50, update=50),
    "B": WorkloadMix(read=95, update=5),
    "C": WorkloadMix(read=100),
    "D": WorkloadMix(read=95, insert=5),
    "E": WorkloadMix(insert=5, scan=95),
    "F": WorkloadMix(read=50, modify=50),
}


@dataclass
class YCSBConfig:
    """Workload shape: §6.2 uses 32-byte keys and 1024-byte values."""

    workload: str = "A"
    record_count: int = 1000
    field_length: int = 1024
    max_scan_length: int = 100
    zipfian_theta: float = 0.99
    seed: int = 42


@dataclass(frozen=True)
class YCSBOperation:
    """One generated operation."""

    op: OpType
    key: int
    value_size: int = 0
    scan_length: int = 0


def make_value(key: int, size: int) -> bytes:
    """Deterministic pseudo-payload for a key (cheap, reproducible)."""
    seedling = (f"k{key}:".encode() * (size // 4 + 1))[:size]
    return seedling


class YCSBWorkload:
    """Generates :class:`YCSBOperation` streams for one workload letter."""

    def __init__(self, config: Optional[YCSBConfig] = None):
        self.config = config or YCSBConfig()
        letter = self.config.workload.upper()
        if letter not in WORKLOAD_MIXES:
            raise ValueError(f"unknown YCSB workload {letter!r}")
        self.letter = letter
        self.mix = WORKLOAD_MIXES[letter]
        self.rng = random.Random(self.config.seed)
        self.record_count = self.config.record_count
        self._inserted = self.config.record_count
        if letter == "D":
            self._chooser = LatestGenerator(self.record_count,
                                            self.config.zipfian_theta,
                                            self.rng)
        else:
            self._chooser = ScrambledZipfianGenerator(
                self.record_count, self.config.zipfian_theta, self.rng)

    # ------------------------------------------------------------------
    def load_keys(self) -> range:
        """Keys to pre-load before the run (YCSB's load phase)."""
        return range(self.config.record_count)

    def next_key(self) -> int:
        key = self._chooser.next()
        # The scrambled generator can emit ids ≥ current keyspace; clamp the
        # way YCSB does (retry is equivalent for our purposes).
        return key % self._inserted

    def next_insert_key(self) -> int:
        key = self._inserted
        self._inserted += 1
        if isinstance(self._chooser, LatestGenerator):
            self._chooser.observe_insert()
        else:
            self._chooser.items = self._inserted
        return key

    def operations(self, count: int) -> Iterator[YCSBOperation]:
        """Generate ``count`` operations."""
        for _ in range(count):
            op = self.mix.pick(self.rng)
            if op is OpType.INSERT:
                yield YCSBOperation(op, self.next_insert_key(),
                                    value_size=self.config.field_length)
            elif op is OpType.SCAN:
                yield YCSBOperation(
                    op, self.next_key(),
                    scan_length=self.rng.randint(1,
                                                 self.config.max_scan_length))
            elif op in (OpType.UPDATE, OpType.MODIFY):
                yield YCSBOperation(op, self.next_key(),
                                    value_size=self.config.field_length)
            else:
                yield YCSBOperation(op, self.next_key())
