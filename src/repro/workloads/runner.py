"""Closed-loop workload execution against the case-study stores.

A :class:`YCSBRunner` drives one adapter (one client session) with a stream
of YCSB operations, recording per-operation latency by type — the
measurement loop behind Figures 2, 11 and 12.  Multiple runners can share a
store (multi-threaded YCSB clients) by giving each its own adapter/session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..apps.mongolike import MongoLikeDB
from ..apps.rockskv import ReplicatedRocksKV
from ..sim.stats import LatencyRecorder
from .ycsb import OpType, YCSBOperation, YCSBWorkload, make_value

__all__ = ["MongoAdapter", "RocksAdapter", "ShardedAdapter", "RunStats",
           "YCSBRunner"]


class MongoAdapter:
    """Drives a :class:`MongoSession` with YCSB operations."""

    def __init__(self, db: MongoLikeDB, read_hop: Optional[int] = None):
        self.db = db
        self.session = db.session()
        self.read_hop = read_hop

    def load(self, key: int, size: int):
        yield from self.session.insert(key, make_value(key, size))

    def execute(self, op: YCSBOperation):
        session = self.session
        if op.op is OpType.READ:
            yield from session.find(op.key, hop=self.read_hop)
        elif op.op is OpType.UPDATE:
            yield from session.update(op.key, make_value(op.key, op.value_size))
        elif op.op is OpType.INSERT:
            yield from session.insert(op.key, make_value(op.key, op.value_size))
        elif op.op is OpType.MODIFY:
            yield from session.read_modify_write(
                op.key, make_value(op.key, op.value_size))
        elif op.op is OpType.SCAN:
            yield from session.scan(op.key, op.scan_length,
                                    hop=self.read_hop)
        else:
            raise ValueError(f"unhandled op {op.op}")


class RocksAdapter:
    """Drives a :class:`ReplicatedRocksKV` with YCSB operations."""

    def __init__(self, kv: ReplicatedRocksKV):
        self.kv = kv

    @staticmethod
    def _key(key: int) -> bytes:
        return f"user{key:026d}"[:32].encode()  # 32-byte keys, §6.2.

    def load(self, key: int, size: int):
        yield from self.kv.put(self._key(key), make_value(key, size))

    def execute(self, op: YCSBOperation):
        kv = self.kv
        if op.op is OpType.READ:
            # Served from the client-side memtable — no replication traffic.
            kv.get(self._key(op.key))
        elif op.op in (OpType.UPDATE, OpType.INSERT, OpType.MODIFY):
            if op.op is OpType.MODIFY:
                kv.get(self._key(op.key))
            yield from kv.put(self._key(op.key),
                              make_value(op.key, op.value_size))
        else:
            raise ValueError(f"RocksKV adapter does not implement {op.op}")


class ShardedAdapter:
    """Drives a :class:`~repro.cluster.ShardedDeployment` with YCSB ops.

    Every mutation routes through the deployment's hash ring to the key's
    owning shard — so one runner (or many, sharing the deployment) sees a
    single flat key space while the writes spread over N replication
    groups.  Reads are served from the owning shard's client-side region
    copy, the same no-replication-traffic model as
    :meth:`RocksAdapter.execute`.  Scans are not implemented: a hash ring
    trades range locality for uniform spread, which is the right trade for
    the write-heavy mixes (§6.2) this adapter exists to scale.
    """

    def __init__(self, deployment, durable: bool = False):
        self.deployment = deployment
        self.durable = durable

    def _write_size(self, size: int) -> int:
        return min(size, self.deployment.config.record_size)

    def load(self, key: int, size: int):
        yield self.deployment.submit_write(key, self._write_size(size),
                                           durable=self.durable)

    def execute(self, op: YCSBOperation):
        deployment = self.deployment
        if op.op is OpType.READ:
            try:
                deployment.read_record(op.key)
            except KeyError:
                pass  # Never-loaded key: a miss, answered client-side.
        elif op.op in (OpType.UPDATE, OpType.INSERT, OpType.MODIFY):
            if op.op is OpType.MODIFY:
                try:
                    deployment.read_record(op.key)
                except KeyError:
                    pass
            yield deployment.submit_write(op.key,
                                          self._write_size(op.value_size),
                                          durable=self.durable)
        else:
            raise ValueError(f"sharded adapter does not implement {op.op}")


@dataclass
class RunStats:
    """Latency recorders per op type plus an aggregate."""

    overall: LatencyRecorder = field(default_factory=lambda:
                                     LatencyRecorder("overall"))
    by_type: Dict[OpType, LatencyRecorder] = field(default_factory=dict)

    def record(self, op_type: OpType, latency_ns: int) -> None:
        self.overall.record(latency_ns)
        if op_type not in self.by_type:
            self.by_type[op_type] = LatencyRecorder(op_type.value)
        self.by_type[op_type].record(latency_ns)

    def writes(self) -> LatencyRecorder:
        """Merged update+insert+modify latencies (the paper's focus)."""
        merged = LatencyRecorder("writes")
        for op_type in (OpType.UPDATE, OpType.INSERT, OpType.MODIFY):
            recorder = self.by_type.get(op_type)
            if recorder is not None:
                merged.merge(recorder)
        return merged


class YCSBRunner:
    """Runs load + operation phases against one adapter, closed loop."""

    def __init__(self, workload: YCSBWorkload, adapter,
                 stats: Optional[RunStats] = None):
        self.workload = workload
        self.adapter = adapter
        self.stats = stats or RunStats()

    def load_phase(self, sim, limit: Optional[int] = None):
        """Insert the initial records (not measured)."""
        keys = self.workload.load_keys()
        if limit is not None:
            keys = range(min(limit, len(keys)))
        for key in keys:
            yield from self.adapter.load(key,
                                         self.workload.config.field_length)

    def run_phase(self, sim, op_count: int, warmup: int = 0):
        """Execute ``op_count`` operations, recording all but ``warmup``."""
        executed = 0
        for op in self.workload.operations(op_count):
            start = sim.now
            result = self.adapter.execute(op)
            if result is not None:
                yield from result
            executed += 1
            if executed > warmup:
                self.stats.record(op.op, sim.now - start)
        return self.stats
