"""Workload generation: YCSB mixes and closed-loop runners."""

from .ycsb import (
    WORKLOAD_MIXES,
    OpType,
    WorkloadMix,
    YCSBConfig,
    YCSBOperation,
    YCSBWorkload,
    make_value,
)
from .runner import (
    MongoAdapter,
    RocksAdapter,
    RunStats,
    ShardedAdapter,
    YCSBRunner,
)
from .tenants import Surge, TenantSpec, tenant_arrivals

__all__ = [
    "Surge",
    "TenantSpec",
    "tenant_arrivals",
    "WORKLOAD_MIXES",
    "OpType",
    "WorkloadMix",
    "YCSBConfig",
    "YCSBOperation",
    "YCSBWorkload",
    "make_value",
    "MongoAdapter",
    "RocksAdapter",
    "ShardedAdapter",
    "RunStats",
    "YCSBRunner",
]
