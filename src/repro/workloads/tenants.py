"""Tenant-tagged open-loop arrival generation.

The figure workloads drive one anonymous stream; the overload scenarios
need *named* tenants whose offered load changes mid-run — a well-behaved
fleet plus one tenant bursting to 10× its quota, or a load surge timed
to coincide with a replica stall.  :class:`TenantSpec` describes a
tenant's base Poisson rate and any :class:`Surge` windows;
:func:`tenant_arrivals` turns the spec into a simulator process that
calls back once per arrival.

Rate changes are handled exactly, not approximately: inter-arrival gaps
are exponential, and the exponential is memoryless, so when a gap would
cross a surge boundary the process advances to the boundary and redraws
at the new rate — statistically identical to sampling the
inhomogeneous process directly, with no thinning loop.  All randomness
comes from the caller's named RNG stream, preserving the repo-wide
determinism contract.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generator, Optional, Tuple

from ..sim.engine import Event, Simulator
from ..sim.rng import exponential

__all__ = ["Surge", "TenantSpec", "tenant_arrivals"]


@dataclass(frozen=True)
class Surge:
    """A window where a tenant's offered rate is multiplied.

    ``multiplier`` may be below 1.0 (a lull) — the hotspot-shift
    scenario uses paired surge/lull windows to move load between
    tenants mid-run.
    """

    start_ns: int
    duration_ns: int
    multiplier: float

    def __post_init__(self) -> None:
        if self.start_ns < 0:
            raise ValueError(f"start_ns must be >= 0, got {self.start_ns}")
        if self.duration_ns <= 0:
            raise ValueError(
                f"duration_ns must be positive, got {self.duration_ns}")
        if self.multiplier <= 0:
            raise ValueError(
                f"multiplier must be positive, got {self.multiplier}")

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's offered-load profile."""

    name: str
    rate_ops_per_sec: float
    payload_bytes: int = 64
    surges: Tuple[Surge, ...] = ()

    def __post_init__(self) -> None:
        if self.rate_ops_per_sec <= 0:
            raise ValueError(
                f"rate must be positive, got {self.rate_ops_per_sec}")
        if self.payload_bytes < 1:
            raise ValueError(
                f"payload_bytes must be >= 1, got {self.payload_bytes}")

    def rate_at(self, now_ns: int) -> float:
        """Effective offered rate at ``now_ns`` (surges multiply)."""
        rate = self.rate_ops_per_sec
        for surge in self.surges:
            if surge.start_ns <= now_ns < surge.end_ns:
                rate *= surge.multiplier
        return rate

    def next_boundary(self, now_ns: int) -> Optional[int]:
        """The next surge start/end strictly after ``now_ns``, if any."""
        boundary: Optional[int] = None
        for surge in self.surges:
            for edge in (surge.start_ns, surge.end_ns):
                if edge > now_ns and (boundary is None or edge < boundary):
                    boundary = edge
        return boundary


def tenant_arrivals(sim: Simulator, spec: TenantSpec, rng: random.Random,
                    horizon_ns: int,
                    on_arrival: Callable[[TenantSpec, int], None],
                    ) -> Generator[Event, None, None]:
    """Generator process: Poisson arrivals for ``spec`` until the horizon.

    ``on_arrival(spec, now_ns)`` fires once per arrival; issuing the op
    (through a :class:`~repro.traffic.shaper.TrafficShaper` or straight
    at a group) is the callback's business.  Gaps that would cross a
    surge boundary are redrawn at the boundary — exact for exponential
    inter-arrivals (memorylessness), so surged rate changes take effect
    at the right instant.
    """
    while sim.now < horizon_ns:
        rate = spec.rate_at(sim.now)
        gap = max(1, int(exponential(rng, 1e9 / rate)))
        boundary = spec.next_boundary(sim.now)
        if boundary is not None and sim.now + gap > boundary:
            # Advance to the rate change and redraw; no arrival fires.
            yield sim.timeout(boundary - sim.now)
            continue
        yield sim.timeout(gap)
        if sim.now >= horizon_ns:
            return
        on_arrival(spec, sim.now)
