"""Replicated MongoDB-like document store (§5.2 case study).

The paper splits MongoDB into a *front end* (query parsing, checks,
translation — integrated with the client / transaction coordinator) and a
*back end* (HyperLoop-backed replicas holding the journal and data in NVM).
This module follows that split:

* every operation first pays front-end CPU on the client host — under the
  10:1 co-location of §6.2 this cost is paid on an overloaded CPU and is
  "the remainder of the latency" that HyperLoop cannot remove;
* writes append a journal record (``Append``), then acquire the group write
  lock, ``ExecuteAndAdvance`` the journal against the database area, and
  release the lock — exactly the §5.2 write path;
* reads can be served locally (the primary view), or from any replica via a
  read lock plus a one-sided READ ("read locks … help all replicas
  simultaneously serve consistent reads", §5).

Documents live in the database area behind a client-side directory
(doc id → slot).  ``scan`` iterates ids in order, for YCSB workload E.
"""

from __future__ import annotations

import struct
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.client import ReplicatedStore
from ..sim.units import us
from ..storage.wal import LogEntry

__all__ = ["MongoConfig", "MongoLikeDB", "MongoSession"]

_DOC_HEADER = struct.Struct("<QI")  # doc_id u64, length u32


@dataclass
class MongoConfig:
    """Front-end and layout tunables."""

    parse_ns: int = us(25)           # Query parse + validation + translate.
    read_parse_ns: int = us(15)
    journal_lock_id: int = 0         # Fallback lock when not per-document.
    #: Document-level write concurrency (WiredTiger-style).  When False,
    #: every write serializes on the single journal lock.
    lock_per_document: bool = True
    max_doc_size: int = 64 * 1024


class MongoLikeDB:
    """One replica set's worth of document storage."""

    def __init__(self, store: ReplicatedStore,
                 config: Optional[MongoConfig] = None, name: str = "mongo"):
        self.store = store
        self.config = config or MongoConfig()
        self.name = name
        self.sim = store.sim
        self._directory: Dict[int, Tuple[int, int]] = {}  # id -> (off, len)
        self._sorted_ids: List[int] = []
        self._alloc = 0
        self.inserts = 0
        self.updates = 0
        self.reads = 0
        self.scans = 0
        self._session_count = 0

    def session(self) -> "MongoSession":
        """A client session with its own front-end thread.

        Concurrent drivers must each use their own session, mirroring one
        connection/worker thread in the real server.
        """
        self._session_count += 1
        thread = self.store.group.client_host.spawn_thread(
            f"{self.name}.fe{self._session_count}")
        return MongoSession(self, thread)

    # ------------------------------------------------------------------
    # Directory management (client-side, no yields → atomic in the sim)
    # ------------------------------------------------------------------
    def _slot_for(self, doc_id: int, size: int) -> int:
        existing = self._directory.get(doc_id)
        if existing is not None and existing[1] >= size:
            self._directory[doc_id] = (existing[0], existing[1])
            return existing[0]
        offset = self._alloc
        if offset + size > self.store.layout.db_size:
            raise MemoryError(f"{self.name}: database area exhausted")
        self._alloc += (size + 7) & ~7
        if existing is None:
            insort(self._sorted_ids, doc_id)
        self._directory[doc_id] = (offset, size)
        return offset

    def ids_from(self, start_id: int, count: int) -> List[int]:
        index = bisect_left(self._sorted_ids, start_id)
        return self._sorted_ids[index:index + count]

    @property
    def document_count(self) -> int:
        return len(self._sorted_ids)


class MongoSession:
    """A single client connection: front-end thread + operation methods.

    All methods are simulation generators.
    """

    def __init__(self, db: MongoLikeDB, thread):
        self.db = db
        self.thread = thread

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def insert(self, doc_id: int, document: bytes):
        yield from self._write(doc_id, document, is_insert=True)

    def update(self, doc_id: int, document: bytes):
        if doc_id not in self.db._directory:
            raise KeyError(f"update of missing document {doc_id}")
        yield from self._write(doc_id, document, is_insert=False)

    def _write(self, doc_id: int, document: bytes, is_insert: bool):
        db, config, store = self.db, self.db.config, self.db.store
        if len(document) > config.max_doc_size:
            raise ValueError("document too large")
        yield self.thread.run(config.parse_ns)
        payload = _DOC_HEADER.pack(doc_id, len(document)) + document
        slot = db._slot_for(doc_id, len(payload))
        # §5.2 write path: replicate the journal record, then execute it
        # under the group write lock (per document by default, mirroring
        # document-level concurrency in the real engine).
        if config.lock_per_document:
            lock_id = 1 + doc_id % (store.layout.num_locks - 1)
        else:
            lock_id = config.journal_lock_id
        yield from store.append_blocking_truncate([LogEntry(slot, payload)])
        yield from store.wr_lock(lock_id)
        try:
            yield from store.execute_and_advance()
        finally:
            yield from store.wr_unlock(lock_id)
        if is_insert:
            db.inserts += 1
        else:
            db.updates += 1

    def read_modify_write(self, doc_id: int, document: bytes):
        """YCSB-F's modify: read the document, then update it."""
        yield from self.find(doc_id)
        yield from self.update(doc_id, document)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def find(self, doc_id: int, hop: Optional[int] = None):
        """Read one document; generator, returns the bytes (or None).

        ``hop=None`` serves from the primary view (the client's own region);
        otherwise a read lock is taken on replica ``hop`` and the document
        is fetched with a one-sided READ.
        """
        db, config, store = self.db, self.db.config, self.db.store
        yield self.thread.run(config.read_parse_ns)
        entry = db._directory.get(doc_id)
        if entry is None:
            db.reads += 1
            return None
        offset, length = entry
        if hop is None:
            raw = store.db_read_local(offset, length)
        else:
            lock_id = 1 + doc_id % (store.layout.num_locks - 1)
            yield from store.rd_lock(lock_id, hop)
            try:
                raw = yield store.db_read(hop, offset, length)
            finally:
                yield from store.rd_unlock(lock_id, hop)
        db.reads += 1
        got_id, size = _DOC_HEADER.unpack_from(raw, 0)
        if got_id != doc_id:
            return None  # Slot not yet executed on that replica.
        return bytes(raw[_DOC_HEADER.size:_DOC_HEADER.size + size])

    def scan(self, start_id: int, count: int, hop: Optional[int] = None):
        """Range scan of ``count`` documents from ``start_id`` (YCSB-E)."""
        db, config = self.db, self.db.config
        yield self.thread.run(config.parse_ns)
        documents = []
        for doc_id in db.ids_from(start_id, count):
            document = yield from self.find(doc_id, hop=hop)
            if document is not None:
                documents.append((doc_id, document))
        db.scans += 1
        return documents
