"""Replicated Memcache/Redis-like cache (§7, weaker consistency models).

The paper notes that its fully-ACID primitives subsume weaker modes: "by
not using the log processing and durability in the critical path, systems
can get replicated Memcache or Redis like semantics."  This cache is that
configuration:

* ``set``/``delete`` — one *non-durable* gWRITE straight into the data
  region: no write-ahead log, no ExecuteAndAdvance, no gFLUSH.  An ACK
  means all replicas have the value in (volatile-cache-backed) memory —
  cache semantics, lowest latency;
* ``get`` — served from the client's copy, or via a one-sided READ from
  any replica (scale-out reads with zero replica CPU);
* ``incr``/``decr`` — an atomic counter implemented with a gCAS retry
  loop: the result map returns each replica's observed value on a miss,
  so no separate read is ever needed;
* TTLs — every value carries an absolute expiry timestamp checked lazily
  on read (and swept by an optional janitor process).

Values never survive power failure — by design; see
:class:`~repro.apps.rockskv.ReplicatedRocksKV` for the durable
configuration of the same machinery.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..sim.units import seconds

__all__ = ["CacheConfig", "ReplicatedCache"]

_SLOT_HEADER = struct.Struct("<HIQ")  # key_len, value_len, expiry_ns
_TOMBSTONE = 0xFFFFFFFF


@dataclass
class CacheConfig:
    default_ttl_ns: Optional[int] = None     # None = no expiry.
    counter_area: int = 4096                 # Bytes reserved for counters.
    janitor_period_ns: int = seconds(1)
    client_op_cpu_ns: int = 400


class ReplicatedCache:
    """A replication-group-backed cache with Redis-flavoured operations.

    ``group`` is any :class:`~repro.backend.api.ReplicationBackend`
    implementation.
    """

    def __init__(self, group, config: Optional[CacheConfig] = None,
                 name: str = "cache", start_janitor: bool = False):
        self.group = group
        self.config = config or CacheConfig()
        self.name = name
        self.sim = group.sim
        if self.config.counter_area % 8:
            raise ValueError("counter area must be 8-byte aligned")
        self._counter_index: Dict[bytes, int] = {}
        self._next_counter = 0
        self._index: Dict[bytes, Tuple[int, int]] = {}  # key -> (off, size)
        self._alloc = self.config.counter_area
        self.thread = group.client_host.spawn_thread(f"{name}.fe")
        self.sets = 0
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        if start_janitor:
            self.sim.process(self._janitor(), name=f"{name}.janitor")

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------
    def set(self, key: bytes, value: bytes, ttl_ns: Optional[int] = None):
        """Replicate a value to every node; generator.

        Non-durable by construction: the ACK means in-memory replication,
        the cache contract.
        """
        effective_ttl = ttl_ns if ttl_ns is not None \
            else self.config.default_ttl_ns
        expiry = self.sim.now + effective_ttl if effective_ttl else 0
        payload = _SLOT_HEADER.pack(len(key), len(value), expiry) \
            + key + value
        offset = self._place(key, len(payload))
        yield self.thread.run(self.config.client_op_cpu_ns)
        self.group.write_local(offset, payload)
        yield self.group.gwrite(offset, len(payload), durable=False)
        self.sets += 1

    def delete(self, key: bytes):
        """Replicated tombstone; generator."""
        entry = self._index.get(key)
        if entry is None:
            return
        offset, _size = entry
        header = _SLOT_HEADER.pack(len(key), _TOMBSTONE, 0)
        yield self.thread.run(self.config.client_op_cpu_ns)
        self.group.write_local(offset, header)
        yield self.group.gwrite(offset, _SLOT_HEADER.size, durable=False)
        del self._index[key]

    def get(self, key: bytes) -> Optional[bytes]:
        """Local read from the client's replica of the cache."""
        entry = self._index.get(key)
        if entry is None:
            self.misses += 1
            return None
        offset, size = entry
        return self._decode(key, self.group.read_local(offset, size))

    def get_from_replica(self, hop: int, key: bytes):
        """One-sided READ from a chosen replica; generator → value/None."""
        entry = self._index.get(key)
        if entry is None:
            self.misses += 1
            return None
        offset, size = entry
        raw = yield self.group.remote_read(hop, offset, size)
        return self._decode(key, raw)

    def _decode(self, key: bytes, raw: bytes) -> Optional[bytes]:
        key_len, value_len, expiry = _SLOT_HEADER.unpack_from(raw, 0)
        if value_len == _TOMBSTONE:
            self.misses += 1
            return None
        if expiry and self.sim.now >= expiry:
            self.expirations += 1
            self.misses += 1
            return None
        start = _SLOT_HEADER.size + key_len
        self.hits += 1
        return bytes(raw[start:start + value_len])

    def _place(self, key: bytes, size: int) -> int:
        existing = self._index.get(key)
        if existing is not None and existing[1] >= size:
            self._index[key] = (existing[0], size)
            return existing[0]
        offset = self._alloc
        if offset + size > self.group.config.region_size - 64:
            raise MemoryError(f"{self.name}: cache region exhausted")
        self._alloc += (size + 7) & ~7
        self._index[key] = (offset, size)
        return offset

    # ------------------------------------------------------------------
    # Counters (INCR/DECR à la Redis)
    # ------------------------------------------------------------------
    def _counter_offset(self, key: bytes) -> int:
        slot = self._counter_index.get(key)
        if slot is None:
            slot = self._next_counter
            if (slot + 1) * 8 > self.config.counter_area:
                raise MemoryError(f"{self.name}: counter area exhausted")
            self._next_counter += 1
            self._counter_index[key] = slot
        return slot * 8

    def incr(self, key: bytes, delta: int = 1):
        """Atomically add ``delta`` on every replica; generator → new value.

        A gCAS retry loop: a failed compare returns the observed value in
        the result map, so each retry costs exactly one group operation.
        """
        offset = self._counter_offset(key)
        expected = int.from_bytes(self.group.read_local(offset, 8), "little")
        while True:
            yield self.thread.run(self.config.client_op_cpu_ns)
            new_value = (expected + delta) % (1 << 64)
            result = yield self.group.gcas(offset, expected, new_value)
            observed = result.cas_results()
            if all(value == expected for value in observed):
                self.group.write_local(offset,
                                       new_value.to_bytes(8, "little"))
                return new_value
            expected = max(observed)

    def decr(self, key: bytes, delta: int = 1):
        value = yield from self.incr(key, -delta % (1 << 64))
        return value

    def counter_value(self, key: bytes) -> int:
        offset = self._counter_offset(key)
        return int.from_bytes(self.group.read_local(offset, 8), "little")

    # ------------------------------------------------------------------
    # Expiry janitor
    # ------------------------------------------------------------------
    def _janitor(self):
        """Periodically drop expired keys from the client index."""
        while True:
            yield self.sim.timeout(self.config.janitor_period_ns)
            now = self.sim.now
            doomed = []
            for key, (offset, _size) in self._index.items():
                raw = self.group.read_local(offset, _SLOT_HEADER.size)
                _klen, value_len, expiry = _SLOT_HEADER.unpack_from(raw, 0)
                if value_len != _TOMBSTONE and expiry and now >= expiry:
                    doomed.append(key)
            for key in doomed:
                self.expirations += 1
                yield from self.delete(key)
