"""Case-study applications: RocksDB-like KV store, MongoDB-like document
store, and a Memcache/Redis-like replicated cache (§7's weaker semantics)."""

from .logqueue import QueueConfig, ReplicatedQueue
from .mongolike import MongoConfig, MongoLikeDB, MongoSession
from .rediscache import CacheConfig, ReplicatedCache
from .rockskv import ReplicatedRocksKV, RocksConfig

__all__ = [
    "QueueConfig",
    "ReplicatedQueue",
    "MongoConfig",
    "MongoLikeDB",
    "MongoSession",
    "CacheConfig",
    "ReplicatedCache",
    "ReplicatedRocksKV",
    "RocksConfig",
]
