"""Replicated RocksDB-like key-value store (§5.1 case study).

RocksDB serves requests from an in-memory structure (the memtable) and a
durable write-ahead log; the paper's port replaces the log's storage with
NVM and its append with HyperLoop ``Append``, turning the unreplicated
store into a replicated one "with only a few modifications":

* ``put``/``delete`` — serialize the change, ``Append`` it to the replicated
  WAL (one durable gWRITE chain — the only critical-path work), then update
  the client-side memtable;
* a periodic **flusher** (off the critical path) processes accumulated log
  records with ``ExecuteAndAdvance`` — gMEMCPY moving values into the
  database area on every node — and thereby truncates the log;
* each replica runs a low-frequency **sync thread** that replays its local
  NVM copy of the WAL into an in-memory table, giving the eventually-
  consistent replica reads §5.1 describes ("Replicas need to wake up
  periodically off the critical path to bring the in-memory snapshot in
  sync with NVM").

Works unchanged over any :class:`~repro.backend.api.ReplicationBackend` —
every registered backend (``repro.backend.names()``) provides the same
write/append/gCAS/flush/read surface.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.client import ReplicatedStore
from ..sim.units import ms
from ..storage.wal import LogEntry, WalRing

__all__ = ["RocksConfig", "ReplicatedRocksKV"]

_SLOT_HEADER = struct.Struct("<HI")  # key_len u16, value_len u32 (0 = tombstone)


def encode_kv(key: bytes, value: Optional[bytes]) -> bytes:
    if len(key) > 0xFFFF:
        raise ValueError("key too long")
    if value is None:
        return _SLOT_HEADER.pack(len(key), 0xFFFFFFFF) + key
    return _SLOT_HEADER.pack(len(key), len(value)) + key + value


def decode_kv(data: bytes) -> Tuple[bytes, Optional[bytes]]:
    key_len, value_len = _SLOT_HEADER.unpack_from(data, 0)
    key = bytes(data[_SLOT_HEADER.size:_SLOT_HEADER.size + key_len])
    if value_len == 0xFFFFFFFF:
        return key, None
    start = _SLOT_HEADER.size + key_len
    return key, bytes(data[start:start + value_len])


@dataclass
class RocksConfig:
    flush_period_ns: int = ms(10)        # Off-critical-path log processing.
    replica_sync_period_ns: int = ms(10)  # Replica memtable refresh.
    replica_sync_cpu_per_record_ns: int = 1_500
    client_put_cpu_ns: int = 800          # Serialize + memtable update.


class ReplicatedRocksKV:
    """An embedded KV store replicated through the group primitives."""

    def __init__(self, store: ReplicatedStore, config: Optional[RocksConfig]
                 = None, name: str = "rockskv", client_thread=None,
                 start_background: bool = True):
        self.store = store
        self.config = config or RocksConfig()
        self.name = name
        self.sim = store.sim
        self.memtable: Dict[bytes, Optional[bytes]] = {}
        self._index: Dict[bytes, Tuple[int, int]] = {}  # key -> (db_off, len)
        self._alloc = 0
        self.thread = client_thread or \
            store.group.client_host.spawn_thread(f"{name}.fe")
        self.puts = 0
        self.gets = 0
        self._replica_tables: Dict[int, Dict[bytes, Optional[bytes]]] = {
            hop: {} for hop in range(store.group.group_size)}
        if start_background:
            self.sim.process(self._flusher(), name=f"{name}.flusher")
            for hop in range(store.group.group_size):
                self.sim.process(self._replica_sync(hop),
                                 name=f"{name}.sync{hop}")

    # ------------------------------------------------------------------
    # Critical-path operations
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes):
        """Durable replicated write; generator, returns when replicated."""
        yield from self._log_change(key, value)

    def delete(self, key: bytes):
        """Durable replicated tombstone."""
        yield from self._log_change(key, None)

    def _log_change(self, key: bytes, value: Optional[bytes]):
        payload = encode_kv(key, value)
        slot = self._place(key, len(payload))
        yield self.thread.run(self.config.client_put_cpu_ns)
        yield from self.store.append_blocking_truncate(
            [LogEntry(slot, payload)])
        self.memtable[key] = value
        self.puts += 1

    def get(self, key: bytes) -> Optional[bytes]:
        """Read from the client-side memtable (the primary's view)."""
        self.gets += 1
        return self.memtable.get(key)

    def get_from_replica(self, hop: int, key: bytes) -> Optional[bytes]:
        """Eventually-consistent read from a replica's synced memtable."""
        self.gets += 1
        return self._replica_tables[hop].get(key)

    def _place(self, key: bytes, size: int) -> int:
        """Database-area slot for a key (in place when the size still fits)."""
        existing = self._index.get(key)
        if existing is not None and existing[1] >= size:
            return existing[0]
        offset = self._alloc
        if offset + size > self.store.layout.db_size:
            raise MemoryError(f"{self.name}: database area exhausted")
        self._alloc += (size + 7) & ~7
        self._index[key] = (offset, size)
        return offset

    # ------------------------------------------------------------------
    # Off-critical-path background work
    # ------------------------------------------------------------------
    def _flusher(self):
        """Periodically process + truncate the WAL (client coordinates;
        replicas' NICs do the copying via gMEMCPY)."""
        while True:
            yield self.sim.timeout(self.config.flush_period_ns)
            yield from self.store.drain()

    def _replica_sync(self, hop: int):
        """Replica-side: replay the local WAL copy into an in-memory table.

        Eventual consistency: a put is visible here one sync period after
        its log record reached this replica's NVM.
        """
        replica = self.store.group.replicas[hop]
        host = replica.host
        thread = host.spawn_thread(f"{self.name}.sync{hop}")
        layout = self.store.layout
        base = replica.region.address

        def read(offset: int, size: int) -> bytes:
            return host.memory.read(base + offset, size)

        ring = WalRing(layout.wal_offset, layout.wal_size, read,
                       lambda *_: None)
        table = self._replica_tables[hop]
        seen_seq = 0
        while True:
            yield self.sim.timeout(self.config.replica_sync_period_ns)
            if host.crashed:
                return
            records = ring.scan()
            fresh = [record for record, _off in records if record.seq > seen_seq]
            if not fresh:
                continue
            yield thread.run(len(fresh)
                             * self.config.replica_sync_cpu_per_record_ns)
            for record in fresh:
                for entry in record.entries:
                    key, value = decode_kv(entry.data)
                    table[key] = value
                seen_seq = max(seen_seq, record.seq)
