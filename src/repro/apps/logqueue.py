"""Replicated durable message queue (a log-service case study).

The paper positions its primitives as building blocks for "replicated
transaction systems" in general (§3.2), and §7 lists shared-log designs
(CORFU) among chain replication's users.  This app is that shape: a
Kafka-lite topic log where

* ``publish`` appends a message durably to every replica (one ``Append``
  — the only critical-path work, no replica CPU);
* messages are *retained in the replicated WAL itself* until every
  registered consumer group has acknowledged them — log truncation is
  consumer-driven instead of timer-driven, by periodically executing the
  acked prefix with gMEMCPY into an archive area (so even truncated
  history remains readable on every replica);
* consumers poll in order with their own offsets; reads come from the
  client's view or any replica via one-sided READs.

This exercises a different corner of the substrate than the KV/document
stores: long-lived WAL occupancy, prefix-only truncation, and multiple
independent readers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.client import ReplicatedStore
from ..storage.wal import ENTRY_DESC_SIZE, HEADER_SIZE, LogEntry

__all__ = ["QueueConfig", "ReplicatedQueue"]

_MSG_HEADER = struct.Struct("<QI")  # message_id u64, length u32


@dataclass
class QueueConfig:
    max_message_bytes: int = 32 * 1024
    archive_area_offset: int = 0     # Start of the archive in the db area.


@dataclass
class _MessageRef:
    message_id: int
    archive_offset: int     # Database-area offset after execution.
    wal_payload_offset: int  # Region offset of the payload while in the WAL.
    length: int
    acked_by: set = field(default_factory=set)


class ReplicatedQueue:
    """One topic: durable, replicated, consumer-offset-driven."""

    def __init__(self, store: ReplicatedStore,
                 config: Optional[QueueConfig] = None, name: str = "queue"):
        self.store = store
        self.config = config or QueueConfig()
        self.name = name
        self.sim = store.sim
        self._messages: List[_MessageRef] = []
        self._consumers: Dict[str, int] = {}   # group -> next message index.
        self._next_id = 1
        self._archive_cursor = self.config.archive_area_offset
        self.published = 0
        self.delivered = 0
        self.truncated = 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def publish(self, payload: bytes):
        """Durably replicate one message; generator → message id.

        The record's redo entry targets the archive area, so the eventual
        ExecuteAndAdvance (triggered by consumer acknowledgements) moves
        the message into stable per-replica history.
        """
        if len(payload) > self.config.max_message_bytes:
            raise ValueError("message too large")
        message_id = self._next_id
        framed = _MSG_HEADER.pack(message_id, len(payload)) + payload
        offset = self._archive_cursor
        if offset + len(framed) > self.store.layout.db_size:
            raise MemoryError(f"{self.name}: archive area exhausted")
        entries = [LogEntry(offset, framed)]
        # Where the record will land (place() is pure); the payload sits
        # after the header and the single entry descriptor.  Retention
        # contract: a full ring surfaces WalFullError to the producer —
        # consumer lag must never force premature truncation.
        record = self.store.ring.place(
            HEADER_SIZE + ENTRY_DESC_SIZE + len(framed))[0]
        wal_payload = record + HEADER_SIZE + ENTRY_DESC_SIZE
        yield from self.store.append(entries)
        self._next_id += 1
        self._archive_cursor += (len(framed) + 7) & ~7
        self._messages.append(_MessageRef(message_id, offset, wal_payload,
                                          len(framed)))
        self.published += 1
        return message_id

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def subscribe(self, group: str) -> None:
        """Register a consumer group starting at the current tail."""
        if group in self._consumers:
            raise ValueError(f"consumer group {group!r} already exists")
        self._consumers[group] = len(self._messages)

    def poll(self, group: str, hop: Optional[int] = None,
             max_messages: int = 16):
        """Fetch up to ``max_messages`` unconsumed messages; generator.

        Returns ``[(message_id, payload), …]`` in publish order.  With
        ``hop`` set, payloads come from that replica via one-sided READs
        (the archive holds executed messages; unexecuted ones are read
        from the client's authoritative copy).
        """
        if group not in self._consumers:
            raise KeyError(f"unknown consumer group {group!r}")
        cursor = self._consumers[group]
        batch_end = min(cursor + max_messages, len(self._messages))
        out: List[Tuple[int, bytes]] = []
        for index in range(cursor, batch_end):
            ref = self._messages[index]
            if index < self.truncated:
                # Executed: read the archive (db area) — any replica works.
                if hop is None:
                    raw = self.store.db_read_local(ref.archive_offset,
                                                   ref.length)
                else:
                    raw = yield self.store.db_read(hop, ref.archive_offset,
                                                   ref.length)
            else:
                # Still in the WAL: the record bytes are replicated too,
                # at the same region offset everywhere.
                if hop is None:
                    raw = self.store.group.read_local(
                        ref.wal_payload_offset, ref.length)
                else:
                    raw = yield self.store.group.remote_read(
                        hop, ref.wal_payload_offset, ref.length)
            message_id, length = _MSG_HEADER.unpack_from(raw, 0)
            payload = bytes(raw[_MSG_HEADER.size:_MSG_HEADER.size + length])
            out.append((message_id, payload))
        self.delivered += len(out)
        return out

    def ack(self, group: str, upto_message_id: int):
        """Acknowledge everything up to (and incl.) a message; generator.

        When every group has acked a prefix, those records are executed
        (gMEMCPY into the archive on all replicas) and the WAL truncates.
        """
        if group not in self._consumers:
            raise KeyError(f"unknown consumer group {group!r}")
        index = self._consumers[group]
        while index < len(self._messages) \
                and self._messages[index].message_id <= upto_message_id:
            self._messages[index].acked_by.add(group)
            index += 1
        self._consumers[group] = index
        yield from self._truncate_acked_prefix()

    def _truncate_acked_prefix(self):
        groups = set(self._consumers)
        if not groups:
            return
        fully_acked = 0
        for ref in self._messages:
            if ref.acked_by >= groups:
                fully_acked += 1
            else:
                break
        already_executed = self.truncated
        to_execute = fully_acked - already_executed
        for _ in range(to_execute):
            record = yield from self.store.execute_and_advance()
            if record is None:
                break
            self.truncated += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def depth(self, group: str) -> int:
        """Messages published but not yet consumed by ``group``."""
        return len(self._messages) - self._consumers[group]

    @property
    def wal_backlog(self) -> int:
        """Records still pinned in the replicated WAL (un-truncated)."""
        return self.published - self.truncated
