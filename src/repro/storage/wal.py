"""Write-ahead log: record format and ring arithmetic.

Each log record is a redo record structured exactly as §5 describes: "a list
of modifications to the database … each entry in the list contains a 3-tuple
of (data, len, offset) representing that data of length len is to be copied
at offset in the database."

Binary format::

    header   (40 B): magic u32 | seq u64 | kind u8 | pad u8 | n_entries u16
                     | payload_len u32 | txn_id u64 | crc u32 | pad u32
    entries  (16 B each): db_offset u64 | len u32 | pad u32
    payloads (payload_len B): entry payloads, concatenated

``kind`` distinguishes plain redo records from two-phase-commit markers
(PREPARE / COMMIT / ABORT — see :mod:`repro.storage.twophase`); ``txn_id``
ties a prepare record to its decision marker.

The CRC covers everything after the crc field itself, so torn or
partially-replicated records are detected during recovery ("the entire chain
flushes the log of all valid entries, rejects invalid entries", §5.2).

:class:`WalRing` does the ring-buffer arithmetic over a fixed WAL area: the
first 16 bytes hold the head and tail pointers (ring-relative offsets of the
oldest unprocessed record and the append position); records never wrap —
when a record does not fit before the end of the ring the tail skips to the
start, marked by a WRAP sentinel so scanners can follow.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from enum import IntEnum
from typing import Callable, List, Tuple

__all__ = ["LogEntry", "LogRecord", "RecordKind", "WalRing", "RECORD_MAGIC",
           "WRAP_MAGIC", "HEADER_SIZE", "ENTRY_DESC_SIZE", "WalFullError"]

RECORD_MAGIC = 0x57414C52   # "WALR"
WRAP_MAGIC = 0x57524150     # "WRAP"
_HEADER = struct.Struct("<IQBxHIQIxxxx")
_ENTRY = struct.Struct("<QII")
HEADER_SIZE = _HEADER.size          # 40
ENTRY_DESC_SIZE = _ENTRY.size       # 16
POINTER_AREA = 24   # head u64 | tail u64 | last_seq u64 at ring start.


class RecordKind(IntEnum):
    """Record roles; markers drive the two-phase-commit protocol."""

    DATA = 0      # Plain redo record: apply immediately on execute.
    PREPARE = 1   # 2PC phase 1: apply only once the decision is COMMIT.
    COMMIT = 2    # 2PC decision marker (no entries).
    ABORT = 3     # 2PC decision marker (no entries).


class WalFullError(Exception):
    """The ring has no room: the head must advance (log truncation) first."""


@dataclass(frozen=True)
class LogEntry:
    """One (data, len, offset) modification."""

    db_offset: int
    data: bytes

    @property
    def length(self) -> int:
        return len(self.data)


@dataclass(frozen=True)
class LogRecord:
    """A redo record: sequence number, kind/txn tags, and modifications."""

    seq: int
    entries: Tuple[LogEntry, ...]
    kind: RecordKind = RecordKind.DATA
    txn_id: int = 0

    @property
    def payload_len(self) -> int:
        return sum(entry.length for entry in self.entries)

    @property
    def encoded_size(self) -> int:
        return (HEADER_SIZE + ENTRY_DESC_SIZE * len(self.entries)
                + self.payload_len)

    def _crcable(self, body: bytes) -> bytes:
        return struct.pack("<QBxHIQ", self.seq, int(self.kind),
                           len(self.entries), self.payload_len,
                           self.txn_id) + body

    def encode(self) -> bytes:
        body_parts: List[bytes] = []
        for entry in self.entries:
            body_parts.append(_ENTRY.pack(entry.db_offset, entry.length, 0))
        for entry in self.entries:
            body_parts.append(entry.data)
        body = b"".join(body_parts)
        crc = zlib.crc32(self._crcable(body)) & 0xFFFFFFFF
        header = _HEADER.pack(RECORD_MAGIC, self.seq, int(self.kind),
                              len(self.entries), self.payload_len,
                              self.txn_id, crc)
        return header + body

    @staticmethod
    def decode(data: bytes) -> "LogRecord":
        """Parse and CRC-check one record; raises ValueError if invalid."""
        if len(data) < HEADER_SIZE:
            raise ValueError("record truncated: no header")
        magic, seq, kind_raw, n_entries, payload_len, txn_id, crc = \
            _HEADER.unpack_from(data, 0)
        if magic != RECORD_MAGIC:
            raise ValueError(f"bad record magic {magic:#x}")
        total = HEADER_SIZE + ENTRY_DESC_SIZE * n_entries + payload_len
        if len(data) < total:
            raise ValueError("record truncated: body incomplete")
        body = data[HEADER_SIZE:total]
        crcable = struct.pack("<QBxHIQ", seq, kind_raw, n_entries,
                              payload_len, txn_id) + body
        if zlib.crc32(crcable) & 0xFFFFFFFF != crc:
            raise ValueError(f"CRC mismatch for record seq={seq}")
        entries: List[LogEntry] = []
        cursor = ENTRY_DESC_SIZE * n_entries
        for i in range(n_entries):
            db_offset, length, _pad = _ENTRY.unpack_from(
                body, i * ENTRY_DESC_SIZE)
            entries.append(LogEntry(db_offset,
                                    bytes(body[cursor:cursor + length])))
            cursor += length
        return LogRecord(seq=seq, entries=tuple(entries),
                         kind=RecordKind(kind_raw), txn_id=txn_id)

    @staticmethod
    def peek_size(header: bytes) -> int:
        """Total encoded size given the first HEADER_SIZE bytes."""
        magic, _seq, _kind, n_entries, payload_len, _txn, _crc = \
            _HEADER.unpack_from(header, 0)
        if magic != RECORD_MAGIC:
            raise ValueError(f"bad record magic {magic:#x}")
        return HEADER_SIZE + ENTRY_DESC_SIZE * n_entries + payload_len


class WalRing:
    """Ring-buffer placement of records inside the WAL area.

    Operates through ``read``/``write`` callables that take *region offsets*
    (so the same class runs against the client's local copy of the region,
    with replication handled by the caller via gWRITE/gMEMCPY).
    """

    def __init__(self, wal_offset: int, wal_size: int,
                 read: Callable[[int, int], bytes],
                 write: Callable[[int, bytes], None]):
        if wal_size <= POINTER_AREA + HEADER_SIZE:
            raise ValueError("WAL area too small")
        self.wal_offset = wal_offset
        self.ring_offset = wal_offset + POINTER_AREA
        self.ring_size = wal_size - POINTER_AREA
        self._read = read
        self._write = write

    # ------------------------------------------------------------------
    # Pointers (stored in the region so they replicate and survive crashes)
    # ------------------------------------------------------------------
    @property
    def head(self) -> int:
        return int.from_bytes(self._read(self.wal_offset, 8), "little")

    @property
    def tail(self) -> int:
        return int.from_bytes(self._read(self.wal_offset + 8, 8), "little")

    def write_head(self, value: int) -> None:
        self._write(self.wal_offset, value.to_bytes(8, "little"))

    def write_tail(self, value: int) -> None:
        self._write(self.wal_offset + 8, value.to_bytes(8, "little"))

    @property
    def head_pointer_offset(self) -> int:
        return self.wal_offset

    @property
    def tail_pointer_offset(self) -> int:
        return self.wal_offset + 8

    @property
    def last_seq(self) -> int:
        """Highest sequence number ever appended (survives truncation)."""
        return int.from_bytes(self._read(self.wal_offset + 16, 8), "little")

    def write_last_seq(self, value: int) -> None:
        self._write(self.wal_offset + 16, value.to_bytes(8, "little"))

    def used(self) -> int:
        """Bytes between head and tail in ring order (incl. wrap gaps)."""
        return (self.tail - self.head) % self.ring_size

    def free(self) -> int:
        """Appendable bytes.  One byte of slack keeps full ≠ empty."""
        return self.ring_size - self.used() - 1

    # ------------------------------------------------------------------
    # Append-side placement
    # ------------------------------------------------------------------
    def place(self, record_size: int) -> Tuple[int, int, bool]:
        """Where the next ``record_size``-byte record goes.

        Returns ``(region_offset, new_tail, wrapped)`` with ``new_tail``
        already normalized into ``[0, ring_size)``.  Raises
        :class:`WalFullError` if the ring cannot hold the record until the
        head advances (log truncation).
        """
        head, tail = self.head, self.tail
        wrapped = tail + record_size > self.ring_size
        candidate = 0 if wrapped else tail
        # Wrapping also consumes the skipped gap at the end of the ring.
        consumed = record_size + (self.ring_size - tail if wrapped else 0)
        if consumed > self.free():
            raise WalFullError(
                f"record of {record_size}B does not fit "
                f"({self.free()}B free, wrap={wrapped})")
        new_tail = (candidate + record_size) % self.ring_size
        return self.ring_offset + candidate, new_tail, wrapped

    def write_wrap_marker(self, at_tail: int) -> None:
        """Mark the tail position as a wrap point, if there is room."""
        if at_tail + 4 <= self.ring_size:
            self._write(self.ring_offset + at_tail,
                        WRAP_MAGIC.to_bytes(4, "little"))

    # ------------------------------------------------------------------
    # Scan-side
    # ------------------------------------------------------------------
    def record_at(self, ring_pos: int) -> Tuple[LogRecord, int, int]:
        """Decode the record at ring position ``ring_pos``.

        Follows a wrap marker if present.  Returns
        ``(record, region_offset, next_ring_pos)``.
        """
        pos = ring_pos
        if pos + 4 <= self.ring_size:
            magic = int.from_bytes(self._read(self.ring_offset + pos, 4),
                                   "little")
            if magic == WRAP_MAGIC:
                pos = 0
        elif pos + HEADER_SIZE > self.ring_size:
            pos = 0
        header = self._read(self.ring_offset + pos, HEADER_SIZE)
        size = LogRecord.peek_size(header)
        raw = self._read(self.ring_offset + pos, size)
        return (LogRecord.decode(raw), self.ring_offset + pos,
                (pos + size) % self.ring_size)

    def scan(self) -> List[Tuple[LogRecord, int]]:
        """All valid records from head to tail, with their region offsets.

        Stops at the first invalid record (recovery semantics: a torn tail
        record is rejected, everything before it is kept).
        """
        records = []
        pos, tail = self.head, self.tail
        while pos != tail:
            try:
                record, region_offset, pos = self.record_at(pos)
            except ValueError:
                break
            records.append((record, region_offset))
        return records
