"""Storage substrates: region layout, write-ahead log, group lock table."""

from .layout import RegionLayout
from .locktable import READER_MASK, WRITER_FLAG, GroupLockTable
from .twophase import PartitionWrite, TwoPhaseCoordinator, TxnOutcome
from .wal import (
    ENTRY_DESC_SIZE,
    HEADER_SIZE,
    LogEntry,
    LogRecord,
    RecordKind,
    WalFullError,
    WalRing,
)

__all__ = [
    "RegionLayout",
    "READER_MASK",
    "WRITER_FLAG",
    "GroupLockTable",
    "PartitionWrite",
    "TwoPhaseCoordinator",
    "TxnOutcome",
    "ENTRY_DESC_SIZE",
    "HEADER_SIZE",
    "LogEntry",
    "LogRecord",
    "RecordKind",
    "WalFullError",
    "WalRing",
]
