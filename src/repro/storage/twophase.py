"""Two-phase commit across partitions (§2.1 background, Figure 1(b)).

Large-scale storage systems shard data into partitions, each its own
replication group; a transaction touching several partitions needs the
classic two-phase commit the paper sketches in Figure 1(b).  This module
runs that protocol over any number of :class:`ReplicatedStore` partitions
(each backed by a HyperLoop *or* Naïve-RDMA chain), so a single logical
transaction is atomic across partitions **and** replicated within each:

Phase 1 (prepare)
    For every touched partition: acquire the group write lock, then
    durably replicate a PREPARE record carrying the partition's redo
    entries (one HyperLoop ``Append``).  A partition votes *no* by failing
    the append (e.g. its WAL is full and cannot truncate).

Decision
    The coordinator durably records the outcome in its own decision log
    (client-side NVM — the coordinator's vote of record for recovery).

Phase 2 (commit/abort)
    Every prepared partition gets a COMMIT or ABORT marker record and the
    decision is registered with its store, which lets
    ``ExecuteAndAdvance`` either apply or skip the prepared entries; locks
    are released last.

In-doubt safety: a PREPARE with no registered decision pins the WAL head
(see :meth:`ReplicatedStore.execute_and_advance`), so a crash between the
phases can never surface half a transaction.
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence

from .wal import LogEntry, RecordKind, WalFullError

if TYPE_CHECKING:  # Break the storage <-> core import cycle.
    from ..core.client import ReplicatedStore

__all__ = ["PartitionWrite", "TxnOutcome", "TwoPhaseCoordinator"]

_DECISION = struct.Struct("<QB")


@dataclass(frozen=True)
class PartitionWrite:
    """One partition's share of a distributed transaction."""

    partition: str
    entries: Sequence[LogEntry]
    lock_id: int = 0


@dataclass
class TxnOutcome:
    """Result of one distributed transaction."""

    txn_id: int
    committed: bool
    prepared_partitions: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.committed


class TwoPhaseCoordinator:
    """Coordinates atomic transactions across replicated partitions."""

    _ids = itertools.count(1)

    def __init__(self, partitions: Dict[str, "ReplicatedStore"],
                 decision_log_size: int = 1 << 16):
        if not partitions:
            raise ValueError("need at least one partition")
        self.partitions = dict(partitions)
        stores = list(self.partitions.values())
        self.sim = stores[0].sim
        # The coordinator's durable decision log lives in the client
        # host's own NVM (it is the transaction's vote of record).
        client_host = stores[0].group.client_host
        self._decision_log = client_host.memory.allocate(
            decision_log_size, f"2pc.decisions.{next(TwoPhaseCoordinator._ids)}")
        self._decision_memory = client_host.memory
        self._decision_cursor = 0
        self._next_txn = 1
        self.committed = 0
        self.aborted = 0

    # ------------------------------------------------------------------
    # Decision log
    # ------------------------------------------------------------------
    def _record_decision(self, txn_id: int, decision: RecordKind) -> None:
        offset = self._decision_log.address + self._decision_cursor
        if self._decision_cursor + _DECISION.size > self._decision_log.size:
            self._decision_cursor = 0  # Wrap: old decisions are resolved.
            offset = self._decision_log.address
        self._decision_memory.write(offset,
                                    _DECISION.pack(txn_id, int(decision)))
        self._decision_memory.persist(offset, _DECISION.size)
        self._decision_cursor += _DECISION.size

    def read_decision_log(self) -> List[tuple]:
        """All durably recorded (txn_id, decision) pairs (recovery aid)."""
        out = []
        for cursor in range(0, self._decision_cursor, _DECISION.size):
            txn_id, decision = _DECISION.unpack(self._decision_memory.read(
                self._decision_log.address + cursor, _DECISION.size))
            out.append((txn_id, RecordKind(decision)))
        return out

    # ------------------------------------------------------------------
    # The protocol
    # ------------------------------------------------------------------
    def transact(self, writes: Sequence[PartitionWrite],
                 force_abort: bool = False):
        """Run one distributed transaction; generator → :class:`TxnOutcome`.

        ``force_abort`` simulates a coordinator-side abort after the
        prepare phase (used by tests to exercise the abort path).
        """
        if not writes:
            raise ValueError("transaction touches no partitions")
        names = [write.partition for write in writes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate partition in one transaction")
        for name in names:
            if name not in self.partitions:
                raise KeyError(f"unknown partition {name!r}")
        txn_id = self._next_txn
        self._next_txn += 1
        outcome = TxnOutcome(txn_id=txn_id, committed=False)
        # Lock in deterministic order to avoid deadlocks between
        # concurrent coordinators.
        ordered = sorted(writes, key=lambda write: write.partition)
        locked: List[PartitionWrite] = []
        try:
            for write in ordered:
                store = self.partitions[write.partition]
                yield from store.wr_lock(write.lock_id)
                locked.append(write)
            # Phase 1: replicate PREPARE records durably.
            decision = RecordKind.COMMIT
            for write in ordered:
                store = self.partitions[write.partition]
                try:
                    yield from store.append(list(write.entries),
                                            kind=RecordKind.PREPARE,
                                            txn_id=txn_id)
                    outcome.prepared_partitions.append(write.partition)
                except WalFullError:
                    decision = RecordKind.ABORT  # A partition voted no.
                    break
            if force_abort:
                decision = RecordKind.ABORT
            # Decision point: durable on the coordinator.
            self._record_decision(txn_id, decision)
            # Phase 2: replicate the decision and resolve each partition.
            for write in ordered:
                if write.partition not in outcome.prepared_partitions \
                        and decision is RecordKind.COMMIT:
                    continue
                store = self.partitions[write.partition]
                try:
                    yield from store.append([], kind=decision, txn_id=txn_id)
                except WalFullError:
                    pass  # The registered decision still resolves it.
                store.register_decision(txn_id, decision)
                yield from store.drain()
            outcome.committed = decision is RecordKind.COMMIT
        finally:
            for write in reversed(locked):
                store = self.partitions[write.partition]
                yield from store.wr_unlock(write.lock_id)
        if outcome.committed:
            self.committed += 1
        else:
            self.aborted += 1
        return outcome
