"""Group locking built on gCAS (§5, "Locking and Isolation").

Lock words live in the lock-table area of the replicated region, so the same
logical lock exists at the same offset on every replica.  The encoding is a
single-writer / multiple-reader 64-bit word::

    bit 62        writer flag
    bits 0..47    reader count

* ``wr_lock`` — one gCAS tries to move the word 0 → WRITER on *every*
  replica.  If only some replicas succeeded (a racing client or active
  readers on a subset), the paper's undo protocol runs: a second gCAS with
  the execute map restricted to the nodes that succeeded swaps the word
  back, then the client backs off and retries.
* ``rd_lock``  — read locks are **not group based**: "only the replica being
  read from needs to participate" (§5).  A one-hot execute map increments
  the reader count on just that replica; the gCAS result map returns the
  observed value on mismatch, so retries never need a separate READ.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..sim.engine import Simulator
from .layout import RegionLayout

__all__ = ["GroupLockTable", "WRITER_FLAG", "READER_MASK"]

WRITER_FLAG = 1 << 62
READER_MASK = (1 << 48) - 1


class GroupLockTable:
    """Client-side lock manager over one replication group.

    All methods are simulation generators: drive them with
    ``yield from table.wr_lock(lock_id)`` inside a sim process.
    """

    def __init__(self, group, layout: RegionLayout, rng,
                 base_backoff_ns: int = 2_000, max_backoff_ns: int = 200_000):
        self.group = group
        self.layout = layout
        self.sim: Simulator = group.sim
        self.rng = rng
        self.base_backoff_ns = base_backoff_ns
        self.max_backoff_ns = max_backoff_ns
        # Last value observed per (lock, hop) — seeds rd_lock's expected value.
        self._observed: Dict[Tuple[int, int], int] = {}
        self.wr_lock_retries = 0
        self.rd_lock_retries = 0

    # ------------------------------------------------------------------
    # Write locks (group based)
    # ------------------------------------------------------------------
    def wr_lock(self, lock_id: int):
        """Acquire the exclusive write lock on every replica."""
        offset = self.layout.lock_offset(lock_id)
        attempt = 0
        while True:
            result = yield self.group.gcas(offset, 0, WRITER_FLAG)
            originals = result.cas_results()
            succeeded = [value == 0 for value in originals]
            if all(succeeded):
                return
            self.wr_lock_retries += 1
            if any(succeeded):
                # Undo on the nodes that did take the lock (§4.2's selective
                # execution exists for exactly this).
                yield self.group.gcas(offset, WRITER_FLAG, 0,
                                      execute_map=succeeded)
            yield self.sim.timeout(self._backoff(attempt))
            attempt += 1

    def wr_unlock(self, lock_id: int):
        """Release the write lock everywhere."""
        offset = self.layout.lock_offset(lock_id)
        result = yield self.group.gcas(offset, WRITER_FLAG, 0)
        originals = result.cas_results()
        if any(value != WRITER_FLAG for value in originals):
            raise RuntimeError(
                f"wr_unlock({lock_id}): lock word was {originals}, "
                "not write-locked")

    # ------------------------------------------------------------------
    # Read locks (single replica)
    # ------------------------------------------------------------------
    def rd_lock(self, lock_id: int, hop: int):
        """Take a shared read lock on one replica only."""
        offset = self.layout.lock_offset(lock_id)
        execute_map = [i == hop for i in range(self.group.group_size)]
        expected = self._observed.get((lock_id, hop), 0)
        attempt = 0
        while True:
            if expected & WRITER_FLAG:
                yield self.sim.timeout(self._backoff(attempt))
                attempt += 1
                expected = 0
            result = yield self.group.gcas(offset, expected, expected + 1,
                                           execute_map=execute_map)
            original = result.cas_results()[hop]
            if original == expected:
                self._observed[(lock_id, hop)] = expected + 1
                return
            self.rd_lock_retries += 1
            expected = original

    def rd_unlock(self, lock_id: int, hop: int):
        """Drop a shared read lock on one replica."""
        offset = self.layout.lock_offset(lock_id)
        execute_map = [i == hop for i in range(self.group.group_size)]
        expected = self._observed.get((lock_id, hop), 1)
        while True:
            if expected & READER_MASK == 0:
                raise RuntimeError(
                    f"rd_unlock({lock_id}, hop={hop}): no readers recorded")
            result = yield self.group.gcas(offset, expected, expected - 1,
                                           execute_map=execute_map)
            original = result.cas_results()[hop]
            if original == expected:
                self._observed[(lock_id, hop)] = expected - 1
                return
            expected = original

    def _backoff(self, attempt: int) -> int:
        ceiling = min(self.max_backoff_ns,
                      self.base_backoff_ns * (2 ** min(attempt, 8)))
        return self.rng.randint(self.base_backoff_ns, max(
            self.base_backoff_ns + 1, ceiling))
