"""Shared region layout for replicated storage.

HyperLoop requires the replicated region to have *identical offsets on every
node* (gWRITE replicates "the caller's data located at offset to remote
nodes' memory region at offset", Table 1).  All storage built here therefore
shares one layout::

    [0, locks_end)        lock table: 8-byte lock words
    [locks_end, wal_end)  write-ahead log ring (incl. head/tail pointers)
    [wal_end, region_end) database area

The layout is pure arithmetic — it owns no memory — so the client and every
replica can compute the same offsets independently.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RegionLayout"]

LOCK_WORD_SIZE = 8


@dataclass(frozen=True)
class RegionLayout:
    """Offsets of the three storage areas within a replicated region."""

    region_size: int
    num_locks: int = 1024
    wal_size: int = 4 << 20

    def __post_init__(self):
        if self.db_offset >= self.region_size:
            raise ValueError(
                f"region of {self.region_size}B too small for "
                f"{self.num_locks} locks + {self.wal_size}B WAL")

    # ------------------------------------------------------------------
    # Lock table
    # ------------------------------------------------------------------
    @property
    def locks_offset(self) -> int:
        return 0

    @property
    def locks_size(self) -> int:
        return self.num_locks * LOCK_WORD_SIZE

    def lock_offset(self, lock_id: int) -> int:
        if not 0 <= lock_id < self.num_locks:
            raise IndexError(f"lock id {lock_id} out of range")
        return self.locks_offset + lock_id * LOCK_WORD_SIZE

    # ------------------------------------------------------------------
    # Write-ahead log
    # ------------------------------------------------------------------
    @property
    def wal_offset(self) -> int:
        return self.locks_offset + self.locks_size

    @property
    def wal_end(self) -> int:
        return self.wal_offset + self.wal_size

    # ------------------------------------------------------------------
    # Database area
    # ------------------------------------------------------------------
    @property
    def db_offset(self) -> int:
        return self.wal_end

    @property
    def db_size(self) -> int:
        return self.region_size - self.db_offset

    def db_address(self, db_relative_offset: int, size: int = 0) -> int:
        """Region offset of a database-area location, bounds-checked."""
        if db_relative_offset < 0 or db_relative_offset + size > self.db_size:
            raise IndexError(
                f"db access [{db_relative_offset}, "
                f"{db_relative_offset + size}) outside {self.db_size}B area")
        return self.db_offset + db_relative_offset
