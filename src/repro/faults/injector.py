"""Deterministic execution of fault plans against a live cluster.

:class:`FaultTargets` resolves the plan's host names to simulation
objects; :class:`FaultInjector` is a single simulation process that
walks the plan's flattened schedule and applies each event at exactly
its trigger time.  Ordering is total and deterministic: events fire in
``(fire_ns, plan index)`` order, a predicate deferral re-queues only the
deferred event (later events are not held up), and an event is never
applied before its trigger time.

The injector keeps a complete :class:`FaultRecord` log — scheduled vs
actual fire time, deferral count, skips — which is what experiments use
to measure *detection latency* (watchdog suspicion time minus the
injector's fire time) separately from total outage.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Type

from ..rdma.fabric import Fabric
from ..rdma.nic import RNIC
from ..sim.engine import Process, ProcessGenerator, Simulator
from .plan import FaultEvent, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..host import Cluster, Host

__all__ = ["FaultTargets", "FaultRecord", "FaultInjector"]


class FaultTargets:
    """Resolves a plan's symbolic names against one simulated cluster."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster

    @property
    def now(self) -> int:
        return self.cluster.sim.now

    @property
    def fabric(self) -> Fabric:
        return self.cluster.fabric

    def host(self, name: str) -> "Host":
        try:
            return self.cluster.hosts[name]
        except KeyError:
            raise KeyError(
                f"fault target {name!r} is not a host in this cluster "
                f"(have: {', '.join(self.cluster.hosts)})") from None

    def nic(self, name: str) -> RNIC:
        return self.host(name).nic

    def host_names(self) -> List[str]:
        return list(self.cluster.hosts)


@dataclass
class FaultRecord:
    """Execution log entry for one scheduled (leaf) fault."""

    event: FaultEvent
    scheduled_ns: int
    fired_ns: int = -1          # -1 until (unless) the event fires.
    skipped: bool = False       # Predicate never came true.
    deferrals: int = 0

    @property
    def fired(self) -> bool:
        return self.fired_ns >= 0


class FaultInjector:
    """One sim process that executes a :class:`FaultPlan`.

    Create it, then :meth:`start` it once the cluster's hosts exist.
    The process ends when every event has fired or been skipped, so it
    never keeps the simulation clock spinning past the plan.
    """

    def __init__(self, cluster: "Cluster", plan: FaultPlan,
                 targets: Optional[FaultTargets] = None,
                 name: str = "faults"):
        self.cluster = cluster
        self.sim: Simulator = cluster.sim
        self.plan = plan
        self.targets = targets or FaultTargets(cluster)
        self.name = name
        #: One record per scheduled leaf, in schedule order.
        self.log: List[FaultRecord] = [
            FaultRecord(event=entry.event, scheduled_ns=entry.fire_ns)
            for entry in plan.schedule()]
        #: (fired_ns, event) in actual firing order.
        self.fired: List[Tuple[int, FaultEvent]] = []
        self._process: Optional[Process] = None

    def start(self) -> Process:
        if self._process is not None:
            raise RuntimeError(f"injector {self.name!r} already started")
        self._process = self.sim.process(self._run(), name=self.name)
        return self._process

    # ------------------------------------------------------------------
    # Introspection (experiments read these)
    # ------------------------------------------------------------------
    def first_fired(self, kind: Type[FaultEvent]) -> Optional[int]:
        """When the first event of class ``kind`` fired, or ``None``."""
        for record in self.log:
            if isinstance(record.event, kind) and record.fired:
                return record.fired_ns
        return None

    @property
    def done(self) -> bool:
        return all(record.fired or record.skipped for record in self.log)

    def summary(self) -> Dict[str, int]:
        return {
            "scheduled": len(self.log),
            "fired": sum(1 for record in self.log if record.fired),
            "skipped": sum(1 for record in self.log if record.skipped),
            "deferrals": sum(record.deferrals for record in self.log),
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run(self) -> ProcessGenerator:
        sim = self.sim
        # (fire_ns, stable index, record).  The index is unique per
        # record, so heap ordering never compares records — and matches
        # the plan's declaration-order tiebreak.
        pending: List[Tuple[int, int, FaultRecord]] = [
            (record.scheduled_ns, index, record)
            for index, record in enumerate(self.log)]
        heapq.heapify(pending)
        while pending:
            fire_ns, index, record = heapq.heappop(pending)
            if fire_ns > sim.now:
                yield sim.timeout(fire_ns - sim.now)
            event = record.event
            if event.predicate is not None \
                    and not event.predicate(self.targets):
                if record.deferrals < event.retries:
                    record.deferrals += 1
                    heapq.heappush(
                        pending, (sim.now + event.retry_ns, index, record))
                else:
                    record.skipped = True
                continue
            record.fired_ns = sim.now
            event.apply(self.targets)
            self.fired.append((sim.now, event))

    def __repr__(self) -> str:
        state = "idle" if self._process is None else \
            ("done" if self.done else "running")
        return f"<FaultInjector {self.name!r} {state} plan={self.plan!r}>"
