"""Declarative fault plans: typed events with trigger times and predicates.

A :class:`FaultPlan` is the scriptable half of the fault layer — a list of
frozen, picklable event records saying *what* breaks and *when*, with no
reference to live simulation objects.  Targets are named by host name (the
NIC port namespace), so the same plan can be applied to any cluster that
has those hosts — including one rebuilt inside a sweep worker process,
which is what keeps ``--jobs`` runs byte-identical to serial ones.

Event classes map one-to-one onto the injection hooks in the substrate:

* :class:`CrashProcess` — fail-stop via :meth:`repro.host.Host.crash`;
* :class:`NvmPowerLoss` — :meth:`repro.host.Host.fail_power` through
  :class:`repro.nvm.power.PowerDomain` (QPs error out, the NIC write
  cache is lost, NVM keeps only persisted bytes — the host stays up);
* :class:`LinkFlap` — :meth:`repro.rdma.fabric.Fabric.sever` in
  ``defer`` mode (frames pause, nothing is lost);
* :class:`Partition` — ``sever`` in ``drop`` mode across the cut;
* :class:`StragglerNic` — :meth:`repro.rdma.nic.RNIC.inflate_latency`;
* :class:`CompositeFault` — correlated failures: sub-events fire at
  offsets relative to the composite's trigger (a rack losing power, a
  flap that turns into a partition).

An event's optional ``predicate`` is evaluated against the resolved
:class:`~repro.faults.injector.FaultTargets` at trigger time; a false
predicate defers the event by ``retry_ns`` up to ``retries`` times, then
skips it.  Predicates must be module-level callables if the plan is to
cross a process boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional, Sequence, Tuple

from ..sim.units import ms

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from .injector import FaultTargets

__all__ = [
    "FaultEvent",
    "CrashProcess",
    "NvmPowerLoss",
    "LinkFlap",
    "Partition",
    "StragglerNic",
    "CompositeFault",
    "ScheduledFault",
    "FaultPlan",
]

Predicate = Callable[["FaultTargets"], bool]


@dataclass(frozen=True)
class FaultEvent:
    """Base fault record: a trigger time plus deferral policy.

    ``at_ns`` is absolute simulation time for top-level events and a
    relative offset for events nested inside a :class:`CompositeFault`.
    """

    at_ns: int
    predicate: Optional[Predicate] = field(default=None, kw_only=True)
    retry_ns: int = field(default=ms(1), kw_only=True)
    retries: int = field(default=0, kw_only=True)

    def validate(self) -> None:
        if self.at_ns < 0:
            raise ValueError(f"{type(self).__name__}: at_ns must be >= 0, "
                             f"got {self.at_ns}")
        if self.retry_ns <= 0:
            raise ValueError(f"{type(self).__name__}: retry_ns must be > 0")
        if self.retries < 0:
            raise ValueError(f"{type(self).__name__}: retries must be >= 0")

    def apply(self, targets: "FaultTargets") -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class CrashProcess(FaultEvent):
    """Fail-stop one host: power domain fails and the crashed flag stops
    its heartbeat senders, tenants and handlers at their next step."""

    host: str = ""

    def validate(self) -> None:
        super().validate()
        if not self.host:
            raise ValueError("CrashProcess needs a host name")

    def apply(self, targets: "FaultTargets") -> None:
        targets.host(self.host).crash()

    def describe(self) -> str:
        return f"crash({self.host})"


@dataclass(frozen=True)
class NvmPowerLoss(FaultEvent):
    """Power-cycle one host's volatile parts without the crashed flag:
    the NIC write cache is lost, QPs drop to ERROR, NVM keeps persisted
    bytes.  Models a PSU brownout the process itself survives."""

    host: str = ""

    def validate(self) -> None:
        super().validate()
        if not self.host:
            raise ValueError("NvmPowerLoss needs a host name")

    def apply(self, targets: "FaultTargets") -> None:
        targets.host(self.host).fail_power()

    def describe(self) -> str:
        return f"nvm-power-loss({self.host})"


@dataclass(frozen=True)
class LinkFlap(FaultEvent):
    """Pause the a <-> b link for ``duration_ns``: frames are parked and
    delivered when the link heals (nothing is dropped)."""

    a: str = ""
    b: str = ""
    duration_ns: int = 0

    def validate(self) -> None:
        super().validate()
        if not self.a or not self.b or self.a == self.b:
            raise ValueError(f"LinkFlap needs two distinct hosts, "
                             f"got {self.a!r}/{self.b!r}")
        if self.duration_ns <= 0:
            raise ValueError("LinkFlap duration_ns must be > 0")

    def apply(self, targets: "FaultTargets") -> None:
        targets.fabric.sever(self.a, self.b,
                             until_ns=targets.now + self.duration_ns,
                             mode="defer")

    def describe(self) -> str:
        return f"link-flap({self.a}<->{self.b}, {self.duration_ns}ns)"


@dataclass(frozen=True)
class Partition(FaultEvent):
    """Drop every message crossing the cut between ``side_a`` and
    ``side_b`` for ``duration_ns`` (``None`` = until healed by hand)."""

    side_a: Tuple[str, ...] = ()
    side_b: Tuple[str, ...] = ()
    duration_ns: Optional[int] = None

    def validate(self) -> None:
        super().validate()
        if not self.side_a or not self.side_b:
            raise ValueError("Partition sides must be non-empty")
        overlap = set(self.side_a) & set(self.side_b)
        if overlap:
            raise ValueError(f"Partition sides overlap: {sorted(overlap)}")
        if self.duration_ns is not None and self.duration_ns <= 0:
            raise ValueError("Partition duration_ns must be > 0 or None")

    def apply(self, targets: "FaultTargets") -> None:
        until = (targets.now + self.duration_ns
                 if self.duration_ns is not None else None)
        for left in self.side_a:
            for right in self.side_b:
                targets.fabric.sever(left, right, until_ns=until,
                                     mode="drop")

    def describe(self) -> str:
        return (f"partition({'|'.join(self.side_a)} x "
                f"{'|'.join(self.side_b)})")


@dataclass(frozen=True)
class StragglerNic(FaultEvent):
    """Inflate one NIC's per-message processing latency by ``factor``
    for ``duration_ns`` — a sick-but-alive NIC taking the chain hostage."""

    host: str = ""
    factor: float = 10.0
    duration_ns: int = 0

    def validate(self) -> None:
        super().validate()
        if not self.host:
            raise ValueError("StragglerNic needs a host name")
        if self.factor < 1.0:
            raise ValueError(f"StragglerNic factor must be >= 1, "
                             f"got {self.factor}")
        if self.duration_ns <= 0:
            raise ValueError("StragglerNic duration_ns must be > 0")

    def apply(self, targets: "FaultTargets") -> None:
        targets.nic(self.host).inflate_latency(
            self.factor, targets.now + self.duration_ns)

    def describe(self) -> str:
        return f"straggler({self.host}, x{self.factor:g})"


@dataclass(frozen=True)
class CompositeFault(FaultEvent):
    """Correlated failures: ``parts`` fire at ``at_ns + part.at_ns``.

    Composites nest; scheduling flattens them, so ordering guarantees
    hold across the whole expanded plan.
    """

    parts: Tuple[FaultEvent, ...] = ()

    def validate(self) -> None:
        super().validate()
        if not self.parts:
            raise ValueError("CompositeFault needs at least one part")
        if self.predicate is not None:
            raise ValueError(
                "CompositeFault predicates belong on the parts")
        for part in self.parts:
            part.validate()

    def apply(self, targets: "FaultTargets") -> None:
        raise RuntimeError(
            "CompositeFault is expanded by FaultPlan.schedule(); "
            "it is never applied directly")

    def describe(self) -> str:
        inner = ", ".join(part.describe() for part in self.parts)
        return f"composite[{inner}]"


@dataclass(frozen=True)
class ScheduledFault:
    """One flattened plan entry: a leaf event and its absolute fire time.

    ``index`` is the stable tiebreak — declaration order — so two events
    scheduled at the same nanosecond always fire in plan order.
    """

    fire_ns: int
    index: int
    event: FaultEvent


class FaultPlan:
    """An ordered, validated collection of fault events."""

    def __init__(self, events: Sequence[FaultEvent], name: str = "plan"):
        self.name = name
        self.events: Tuple[FaultEvent, ...] = tuple(events)
        for event in self.events:
            event.validate()
        self._schedule = self._flatten()

    def _flatten(self) -> List[ScheduledFault]:
        leaves: List[Tuple[int, FaultEvent]] = []

        def expand(event: FaultEvent, base_ns: int) -> None:
            fire_ns = base_ns + event.at_ns
            if isinstance(event, CompositeFault):
                for part in event.parts:
                    expand(part, fire_ns)
            else:
                leaves.append((fire_ns, event))

        for event in self.events:
            expand(event, 0)
        entries = [ScheduledFault(fire_ns, index, event)
                   for index, (fire_ns, event) in enumerate(leaves)]
        entries.sort(key=lambda entry: (entry.fire_ns, entry.index))
        return entries

    def schedule(self) -> List[ScheduledFault]:
        """The flattened leaf events, sorted by (fire time, plan order)."""
        return list(self._schedule)

    @property
    def horizon_ns(self) -> int:
        """The last scheduled trigger time (0 for an empty plan)."""
        return max((entry.fire_ns for entry in self._schedule), default=0)

    def __len__(self) -> int:
        return len(self._schedule)

    def __iter__(self) -> Iterator[ScheduledFault]:
        return iter(self._schedule)

    def __repr__(self) -> str:
        return (f"<FaultPlan {self.name!r} events={len(self.events)} "
                f"leaves={len(self._schedule)}>")
