"""Bully-style leader election for group reconfiguration.

After the watchdog suspects a replica, *someone* has to own the rebuild.
HyperLoop's control path is conventional (§5), so we model the classic
bully algorithm over the surviving replicas: ranks are chain positions,
an initiator challenges every higher-ranked member, unresponsive
challenges burn a response timeout, and the highest-ranked responsive
member wins and announces itself.  The elected coordinator then drives
the reconfiguration in :mod:`repro.faults.reconfig`.

The model is deterministic but charges honest time: probe rounds cost
the slowest probe in the round (probes fan out in parallel), a probe to
a dead or partitioned member costs the full response timeout, and a
probe through a straggler NIC costs the inflated round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, List, Optional, Sequence

from ..sim.engine import Event, Simulator
from ..sim.units import ms, us

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..host import Host

__all__ = ["ElectionConfig", "ElectionResult", "BullyElection"]


@dataclass(frozen=True)
class ElectionConfig:
    message_rtt_ns: int = us(50)        # Challenge + OK over the fabric.
    response_timeout_ns: int = ms(1)    # Give up on a silent member.

    def validate(self) -> None:
        if self.message_rtt_ns <= 0:
            raise ValueError("message_rtt_ns must be > 0")
        if self.response_timeout_ns <= self.message_rtt_ns:
            raise ValueError(
                "response_timeout_ns must exceed message_rtt_ns")


@dataclass
class ElectionResult:
    winner: str
    rounds: int
    messages: int
    duration_ns: int


class BullyElection:
    """Elects the highest-ranked responsive member as coordinator."""

    def __init__(self, sim: Simulator,
                 config: Optional[ElectionConfig] = None):
        self.sim = sim
        self.config = config or ElectionConfig()
        self.config.validate()
        self.elections_run = 0

    # ------------------------------------------------------------------
    # Reachability model
    # ------------------------------------------------------------------
    def _responsive(self, source: "Host", target: "Host") -> bool:
        """Would ``target`` answer a challenge from ``source``?"""
        if target.crashed:
            return False
        fault = source.cluster.fabric.link_fault(source.name, target.name)
        if fault is not None and fault[1] == "drop":
            return False  # Partitioned: the challenge never arrives.
        return True

    def _probe_cost(self, source: "Host", target: "Host") -> int:
        """Time for one challenge/answer exchange (or its timeout)."""
        if not self._responsive(source, target):
            return self.config.response_timeout_ns
        rtt = self.config.message_rtt_ns
        factor = max(target.nic.inflation_factor,
                     source.nic.inflation_factor)
        if factor > 1.0:
            rtt = min(int(rtt * factor), self.config.response_timeout_ns)
        return rtt

    # ------------------------------------------------------------------
    # The algorithm
    # ------------------------------------------------------------------
    def elect(self, members: Sequence["Host"],
              initiator: "Host") -> Generator[Event, Any, ElectionResult]:
        """Run one election; generator returning the winner's name.

        ``members`` are ranked by position (last = highest, the chain
        tail — the member most likely to have the freshest durable
        state).  ``initiator`` must be a member.
        """
        ranked = list(members)
        names = [host.name for host in ranked]
        if initiator.name not in names:
            raise ValueError(
                f"initiator {initiator.name!r} is not a member of {names}")
        started = self.sim.now
        messages = 0
        rounds = 0
        current = initiator
        # Walk up the ranking: the current challenger probes everyone
        # above it; the highest responder takes over as challenger.
        # Terminates because the challenger's rank strictly increases.
        while True:
            rank = names.index(current.name)
            higher = ranked[rank + 1:]
            rounds += 1
            if not higher:
                break  # Top of the ranking: current wins by default.
            messages += len(higher)
            round_cost = max(self._probe_cost(current, target)
                             for target in higher)
            yield self.sim.timeout(round_cost)
            responders = [target for target in higher
                          if self._responsive(current, target)]
            if not responders:
                break  # Nobody above answered: current wins.
            messages += len(responders)      # Their OK replies.
            current = responders[-1]         # Highest responder takes over.
        # Coordinator announcement to every other member.
        peers = [host for host in ranked if host is not current]
        if peers:
            messages += len(peers)
            yield self.sim.timeout(
                max(self._probe_cost(current, peer) for peer in peers))
        self.elections_run += 1
        return ElectionResult(winner=current.name, rounds=rounds,
                              messages=messages,
                              duration_ns=self.sim.now - started)
