"""Failure detection: heartbeat mesh + watchdog timer.

The detection layer follows the paper's control-path stance ("a
configurable number of consecutive missing heartbeats is considered a
data path failure", §5) and the classic heartbeat/watchdog resilience
patterns, but is built on the *simulated* substrate end to end:

* each watched host runs a :class:`HeartbeatMonitor` sender — a real
  SEND over a dedicated QP, with CPU time charged to the (possibly
  overloaded) host — so every fault class perturbs heartbeats the way
  it would in production: a crash stops them, a partition drops them in
  the fabric, a straggler NIC delays them, an NVM power loss errors the
  QP out;
* a :class:`Watchdog` periodically sweeps last-seen timestamps and
  declares a host *suspect* once its silence exceeds the tunable
  timeout (``period × (miss_threshold + 1)`` by default).

Detection is intentionally decoupled from recovery: the watchdog only
reports suspicion; :mod:`repro.faults.reconfig` decides what to do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..rdma.verbs import QPState, QueuePair
from ..rdma.wqe import Opcode, WorkRequest
from ..sim.engine import ProcessGenerator, Simulator
from ..sim.units import ms

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..host import Host

__all__ = ["HeartbeatConfig", "HeartbeatMonitor", "Watchdog"]

#: RECVs pre-posted per watched host on the monitor side.
_RECV_DEPTH = 256


@dataclass(frozen=True)
class HeartbeatConfig:
    """Tunables for one heartbeat mesh and its watchdog."""

    period_ns: int = ms(5)
    miss_threshold: int = 3
    cpu_ns: int = 2_000          # Sender-side CPU per beat.
    timeout_ns: int = 0          # 0 -> period_ns * (miss_threshold + 1).

    def deadline_ns(self) -> int:
        """Silence longer than this makes a host suspect."""
        if self.timeout_ns:
            return self.timeout_ns
        return self.period_ns * (self.miss_threshold + 1)

    def validate(self) -> None:
        if self.period_ns <= 0:
            raise ValueError("heartbeat period must be > 0")
        if self.miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        if self.timeout_ns < 0:
            raise ValueError("timeout_ns must be >= 0")


class HeartbeatMonitor:
    """A monitor host collecting heartbeats from a set of watched hosts.

    Hosts can be watched and unwatched at runtime — reconfiguration
    swaps a failed replica for a spare without rebuilding the mesh.
    """

    def __init__(self, monitor_host: "Host",
                 config: Optional[HeartbeatConfig] = None,
                 name: str = "hb"):
        self.monitor_host = monitor_host
        self.sim: Simulator = monitor_host.sim
        self.config = config or HeartbeatConfig()
        self.config.validate()
        self.name = name
        self.last_beat: Dict[str, int] = {}
        self.beats_received = 0
        self._hosts: Dict[str, "Host"] = {}
        self._active: Dict[str, bool] = {}
        self._qps: List[QueuePair] = []
        self._index: List[str] = []
        self._started = False
        self._cq = monitor_host.nic.create_cq(name=f"{name}.cq")

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def watch(self, host: "Host") -> None:
        """Start collecting heartbeats from ``host``."""
        if host.name in self._active and self._active[host.name]:
            return
        nic = self.monitor_host.nic
        index = len(self._index)
        self._index.append(host.name)
        self._hosts[host.name] = host
        self._active[host.name] = True
        local = nic.create_qp(self._cq, self._cq, sq_slots=8,
                              rq_slots=_RECV_DEPTH,
                              name=f"{self.name}.c{index}")
        remote_cq = host.nic.create_cq(name=f"{self.name}.rcq.{host.name}")
        remote = host.nic.create_qp(remote_cq, remote_cq, sq_slots=64,
                                    rq_slots=8,
                                    name=f"{self.name}.r.{host.name}")
        local.connect(remote)
        self._qps.append(local)
        self.last_beat[host.name] = self.sim.now
        for _ in range(_RECV_DEPTH):
            local.post_recv(WorkRequest(Opcode.RECV, [], wr_id=index))
        self.sim.process(self._sender(host, remote),
                         name=f"{self.name}.sender.{host.name}")

    def unwatch(self, host_name: str) -> None:
        """Stop tracking ``host_name``; its sender exits next period."""
        self._active[host_name] = False
        self.last_beat.pop(host_name, None)

    def watched_names(self) -> List[str]:
        return [name for name in self._index if self._active.get(name)]

    def last_seen(self, host_name: str) -> int:
        return self.last_beat.get(host_name, 0)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.process(self._collector(), name=f"{self.name}.collector")

    def _sender(self, host: "Host", qp: QueuePair) -> ProcessGenerator:
        """Watched-host side: real CPU, real SEND, every period.

        Stops on crash, on an errored QP (power loss) and on unwatch —
        exactly the conditions under which a real daemon goes silent.
        """
        config = self.config
        thread = host.spawn_thread(f"{self.name}.{host.name}")
        while True:
            yield self.sim.timeout(config.period_ns)
            if host.crashed or not self._active.get(host.name):
                return
            yield thread.run(config.cpu_ns)
            if host.crashed or not self._active.get(host.name):
                return
            if qp.state is not QPState.RTS:
                return  # Power loss killed the connection.
            qp.post_send(WorkRequest(Opcode.SEND, [], signaled=False))

    def _collector(self) -> ProcessGenerator:
        """Monitor side: stamp arrivals, replenish RECVs."""
        while True:
            completions = self._cq.poll(64)
            if not completions:
                check = self.sim.event()
                self.sim.call_at(
                    self.sim.now + self.config.period_ns // 2,
                    lambda: None if check.triggered else check.succeed())
                yield check
                continue
            for wc in completions:
                name = self._index[wc.wr_id]
                if self._active.get(name):
                    self.last_beat[name] = self.sim.now
                    self.beats_received += 1
                self._qps[wc.wr_id].post_recv(
                    WorkRequest(Opcode.RECV, [], wr_id=wc.wr_id))


class Watchdog:
    """Periodic failure detector over a heartbeat monitor's last-seen map.

    Suspicion is sticky until :meth:`clear` — a host that resumes
    beating after being suspected stays suspect; deciding whether to
    readmit it is recovery policy, not detection policy.
    """

    def __init__(self, monitor: HeartbeatMonitor,
                 config: Optional[HeartbeatConfig] = None,
                 name: str = "watchdog"):
        self.monitor = monitor
        self.sim = monitor.sim
        self.config = config or monitor.config
        self.name = name
        self.suspected: Dict[str, int] = {}   # host -> suspected_at (ns).
        self.checks = 0
        self._callbacks: List[Callable[[str, int], None]] = []
        self._started = False

    def on_suspect(self, callback: Callable[[str, int], None]) -> None:
        """Register ``callback(host_name, suspected_at_ns)``."""
        self._callbacks.append(callback)

    def clear(self, host_name: str) -> None:
        self.suspected.pop(host_name, None)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.process(self._run(), name=self.name)

    def _run(self) -> ProcessGenerator:
        deadline = self.config.deadline_ns()
        period = self.config.period_ns
        while True:
            yield self.sim.timeout(period)
            self.checks += 1
            now = self.sim.now
            for name in self.monitor.watched_names():
                if name in self.suspected:
                    continue
                if now - self.monitor.last_seen(name) > deadline:
                    self.suspected[name] = now
                    for callback in self._callbacks:
                        callback(name, now)
