"""Heartbeat-driven group reconfiguration.

:class:`ReplicaSetManager` owns one replication group's availability
lifecycle and wires the whole pipeline together:

    heartbeats -> watchdog suspicion -> bully election -> reconfigure

Reconfiguration reuses the group-side hooks that already exist for
online rebalancing (:meth:`repro.backend.base.GroupBase.drain` /
``stall``):

1. **Quiesce or abort.**  The manager grants the old group a bounded
   *drain grace* — if every in-flight op completes (straggler faults:
   slow but alive), the reconfiguration is graceful and nothing is
   failed; if the grace expires (crash/partition: in-flight ops will
   never complete), the remainder is aborted with
   :class:`ReplicaFault`, which well-behaved writers catch and retry
   after :meth:`ReplicaSetManager.wait_healthy`.
2. **Elect.**  The surviving replicas run a bully election; the winner
   (highest-ranked responsive member) coordinates the rebuild.  Time
   and message costs are charged.
3. **Rebuild + catch-up.**  A new group is built over the survivors
   plus a spare.  The client's region is authoritative (every ACKed op
   reached it), so it is bulk-copied to every member at the catch-up
   bandwidth — and the *new* group is stalled for exactly that window
   ("writes are paused for a short duration of catch-up phase", §5.1):
   early submissions queue but are not served ahead of the copied
   state.
4. **Re-arm detection.**  The failed host is unwatched, the spare is
   watched, the watchdog suspicion is cleared.

Every stage is timestamped into a :class:`ReconfigRecord`, so
experiments can report detection latency, election time and
rebuild/catch-up time separately — they respond to different knobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from ..sim.engine import Event, ProcessGenerator, Simulator
from ..sim.units import gbps_to_bytes_per_ns, ms
from .detect import HeartbeatConfig, HeartbeatMonitor, Watchdog
from .election import BullyElection, ElectionConfig, ElectionResult

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..backend.base import GroupBase
    from ..host import Host

__all__ = ["ReplicaFault", "ReconfigConfig", "ReconfigRecord",
           "ReplicaSetManager"]

GroupFactory = Callable[["Host", List["Host"]], "GroupBase"]


class ReplicaFault(Exception):
    """Raised into pending operations when a replica is declared failed."""

    def __init__(self, host_name: str, hop: int):
        super().__init__(f"replica {hop} ({host_name}) declared failed")
        self.host_name = host_name
        self.hop = hop


@dataclass(frozen=True)
class ReconfigConfig:
    drain_grace_ns: int = ms(2)           # Graceful-quiesce window.
    catchup_bandwidth_gbps: float = 40.0  # Bulk state-copy rate.
    catchup_cpu_ns: int = 200_000         # Per-member control-plane work.

    def validate(self) -> None:
        if self.drain_grace_ns < 0:
            raise ValueError("drain_grace_ns must be >= 0")
        if self.catchup_bandwidth_gbps <= 0:
            raise ValueError("catchup_bandwidth_gbps must be > 0")


@dataclass
class ReconfigRecord:
    """Timestamped account of one completed reconfiguration."""

    failed_host: str
    suspected_ns: int            # Watchdog suspicion time.
    started_ns: int              # Reconfiguration process start.
    election: Optional[ElectionResult]
    drained: bool                # Graceful quiesce vs abort.
    aborted_ops: int
    catchup_ns: int              # Rebuild + state copy duration.
    completed_ns: int
    replacement: Optional[str]

    @property
    def duration_ns(self) -> int:
        """Suspicion to healthy — the control-path half of the outage."""
        return self.completed_ns - self.suspected_ns


class ReplicaSetManager:
    """Availability supervisor for one replication group."""

    def __init__(self, client_host: "Host", replicas: Sequence["Host"],
                 make_group: GroupFactory,
                 spares: Sequence["Host"] = (),
                 heartbeat: Optional[HeartbeatConfig] = None,
                 reconfig: Optional[ReconfigConfig] = None,
                 election: Optional[ElectionConfig] = None,
                 name: str = "rsm"):
        self.client_host = client_host
        self.sim: Simulator = client_host.sim
        self.replica_hosts: List["Host"] = list(replicas)
        self.make_group = make_group
        self.spares: List["Host"] = list(spares)
        self.reconfig_config = reconfig or ReconfigConfig()
        self.reconfig_config.validate()
        self.name = name
        self.group: "GroupBase" = make_group(client_host,
                                             self.replica_hosts)
        self.healthy = True
        self.monitor = HeartbeatMonitor(client_host,
                                        heartbeat or HeartbeatConfig(),
                                        name=f"{name}.hb")
        self.watchdog = Watchdog(self.monitor, name=f"{name}.watchdog")
        self.election = BullyElection(self.sim, election)
        self.detections: List[tuple[str, int]] = []
        self.reconfigs: List[ReconfigRecord] = []
        self._healthy_waiters: List[Event] = []
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm detection; idempotent."""
        if self._started:
            return
        self._started = True
        for host in self.replica_hosts:
            self.monitor.watch(host)
        self.monitor.start()
        self.watchdog.on_suspect(self._on_suspect)
        self.watchdog.start()

    def wait_healthy(self) -> Event:
        """An event that fires once the group is (back) in service."""
        done = self.sim.event()
        if self.healthy:
            done.succeed()
        else:
            self._healthy_waiters.append(done)
        return done

    @property
    def repairs_completed(self) -> int:
        return len(self.reconfigs)

    # ------------------------------------------------------------------
    # Suspicion -> reconfiguration
    # ------------------------------------------------------------------
    def _on_suspect(self, host_name: str, suspected_ns: int) -> None:
        self.detections.append((host_name, suspected_ns))
        if not self.healthy:
            return  # A reconfiguration is already running; it re-arms us.
        if host_name not in [host.name for host in self.replica_hosts]:
            return  # A stale suspicion about an already-evicted host.
        self.healthy = False
        self.sim.process(self._reconfigure(host_name, suspected_ns),
                         name=f"{self.name}.reconfig.{host_name}")

    def _reconfigure(self, failed_name: str,
                     suspected_ns: int) -> ProcessGenerator:
        sim = self.sim
        config = self.reconfig_config
        started_ns = sim.now
        hop = [host.name for host in self.replica_hosts].index(failed_name)
        failed = self.replica_hosts[hop]
        old_group = self.group

        # 1. Drain grace: give in-flight ops a bounded chance to finish.
        #    Crash/partition ops hang and the grace expires; straggler
        #    ops limp home and the quiesce is graceful.
        drained = False
        aborted = 0
        if config.drain_grace_ns > 0:
            drain = old_group.drain()
            grace = sim.timeout(config.drain_grace_ns)
            yield sim.any_of([drain, grace])
            drained = drain.triggered and drain.ok
        if not drained:
            aborted = old_group.abort_in_flight(
                ReplicaFault(failed_name, hop))

        # 2. Bully election among the survivors.
        survivors = [host for host in self.replica_hosts
                     if host is not failed]
        result: Optional[ElectionResult] = None
        if survivors:
            initiator = survivors[0]
            result = yield from self.election.elect(survivors, initiator)

        # 3. Rebuild over survivors + a spare, then catch up.
        replacement: Optional["Host"] = None
        if self.spares:
            replacement = self.spares.pop(0)
        members = survivors + ([replacement] if replacement else [])
        if not members:
            raise RuntimeError(
                f"{self.name}: no replicas left to rebuild from")
        catchup_started = sim.now
        new_group = self.make_group(self.client_host, members)
        state = self.client_host.memory.read(old_group.region.address,
                                             old_group.region.size)
        self.client_host.memory.write(new_group.region.address, state)
        copy_ns = int(len(state) / gbps_to_bytes_per_ns(
            config.catchup_bandwidth_gbps))
        per_member_ns = config.catchup_cpu_ns + copy_ns
        # Pause the new group for the catch-up window (§5.1): early
        # submissions queue behind the stall instead of racing the copy.
        new_group.stall(per_member_ns * len(members))
        for replica in new_group.replicas:
            yield sim.timeout(config.catchup_cpu_ns)
            yield sim.timeout(copy_ns)
            replica.host.memory.write(replica.region.address, state)
            replica.host.memory.persist(replica.region.address, len(state))

        # 4. Swap in the new group and re-arm detection.
        self.monitor.unwatch(failed_name)
        if replacement is not None:
            self.monitor.watch(replacement)
        self.watchdog.clear(failed_name)
        self.replica_hosts = members
        self.group = new_group
        if hasattr(old_group, "close"):
            old_group.close()
        self.reconfigs.append(ReconfigRecord(
            failed_host=failed_name, suspected_ns=suspected_ns,
            started_ns=started_ns, election=result, drained=drained,
            aborted_ops=aborted, catchup_ns=sim.now - catchup_started,
            completed_ns=sim.now,
            replacement=replacement.name if replacement else None))
        self.healthy = True
        waiters, self._healthy_waiters = self._healthy_waiters, []
        for waiter in waiters:
            waiter.succeed()
