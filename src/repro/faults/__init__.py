"""Scriptable fault injection, failure detection and group recovery.

The package is layered exactly like a production resilience stack:

* :mod:`~repro.faults.plan` — declarative, picklable
  :class:`~repro.faults.plan.FaultPlan` scripts (what breaks, when);
* :mod:`~repro.faults.injector` — the deterministic
  :class:`~repro.faults.injector.FaultInjector` process that applies a
  plan to a live cluster and logs exact fire times;
* :mod:`~repro.faults.detect` — heartbeat mesh + watchdog failure
  detector over the simulated RDMA substrate;
* :mod:`~repro.faults.election` — bully leader election among
  survivors;
* :mod:`~repro.faults.reconfig` —
  :class:`~repro.faults.reconfig.ReplicaSetManager`, the supervisor
  that turns suspicion into a drained/aborted, re-elected, caught-up
  replacement group;
* :mod:`~repro.faults.oracle` — :class:`~repro.faults.oracle.AckOracle`
  proving no ACKed write is ever lost.
"""

from .detect import HeartbeatConfig, HeartbeatMonitor, Watchdog
from .election import BullyElection, ElectionConfig, ElectionResult
from .injector import FaultInjector, FaultRecord, FaultTargets
from .oracle import SEQ_BYTES, AckOracle, pack_seq, unpack_seq
from .plan import (
    CompositeFault,
    CrashProcess,
    FaultEvent,
    FaultPlan,
    LinkFlap,
    NvmPowerLoss,
    Partition,
    ScheduledFault,
    StragglerNic,
)
from .reconfig import (
    ReconfigConfig,
    ReconfigRecord,
    ReplicaFault,
    ReplicaSetManager,
)

__all__ = [
    "FaultEvent",
    "CrashProcess",
    "NvmPowerLoss",
    "LinkFlap",
    "Partition",
    "StragglerNic",
    "CompositeFault",
    "ScheduledFault",
    "FaultPlan",
    "FaultInjector",
    "FaultRecord",
    "FaultTargets",
    "HeartbeatConfig",
    "HeartbeatMonitor",
    "Watchdog",
    "BullyElection",
    "ElectionConfig",
    "ElectionResult",
    "ReplicaFault",
    "ReconfigConfig",
    "ReconfigRecord",
    "ReplicaSetManager",
    "AckOracle",
    "SEQ_BYTES",
    "pack_seq",
    "unpack_seq",
]
