"""Correctness oracles for fault experiments.

The availability/resilience experiments need more than latency numbers —
they need to prove the durability invariant the paper claims for the
offloaded chain (§3.1): *an ACKed write is never lost*, across crashes,
partitions, stragglers and power cycles.

:class:`AckOracle` checks that end to end.  Writers stamp each write
with a monotone 8-byte sequence number and :meth:`track` the group's
completion event.  The oracle records, per region slot, the highest
sequence the client was ever ACKed for (deduplicating replayed
completions along the way).  After the run — and after any
reconfiguration has finished — :meth:`verify` reads every replica's
region directly and reports each ``(slot, hop)`` pair whose stored
sequence is *older* than the highest ACKed one: a lost ACKed write.
Failed or aborted operations are tracked too, but carry no obligation —
losing an un-ACKed write is allowed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from ..sim.engine import Event

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..backend.base import GroupBase

__all__ = ["SEQ_BYTES", "pack_seq", "unpack_seq", "AckOracle"]

#: Each tracked slot holds one little-endian 8-byte sequence number.
SEQ_BYTES = 8


def pack_seq(seq: int) -> bytes:
    """Encode a sequence number into its on-region representation."""
    return seq.to_bytes(SEQ_BYTES, "little")


def unpack_seq(raw: bytes) -> int:
    return int.from_bytes(raw, "little")


@dataclass
class LostWrite:
    """One ACKed sequence number missing from one replica."""

    offset: int
    hop: int
    acked_seq: int
    stored_seq: int


@dataclass
class AckOracle:
    """Tracks ACKs and audits replicas for lost or duplicated ones."""

    #: Highest ACKed sequence per region offset.
    acked: Dict[int, int] = field(default_factory=dict)
    #: Completions observed more than once for the same (offset, seq).
    duplicates: int = 0
    ok_count: int = 0
    failed_count: int = 0
    _seen: Set[Tuple[int, int]] = field(default_factory=set)
    _pending: int = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def track(self, done: Event, offset: int, seq: int) -> Event:
        """Observe a submitted write's completion event; returns it."""
        self._pending += 1
        done.add_callback(
            lambda event: self._completed(event, offset, seq))
        return done

    def _completed(self, event: Event, offset: int, seq: int) -> None:
        self._pending -= 1
        if not event.ok:
            self.failed_count += 1   # Aborted/failed: no durability claim.
            return
        key = (offset, seq)
        if key in self._seen:
            self.duplicates += 1     # The same ACK delivered twice.
            return
        self._seen.add(key)
        self.ok_count += 1
        if seq > self.acked.get(offset, -1):
            self.acked[offset] = seq

    @property
    def pending(self) -> int:
        """Tracked operations that have not completed either way yet."""
        return self._pending

    # ------------------------------------------------------------------
    # Auditing
    # ------------------------------------------------------------------
    def verify(self, group: "GroupBase") -> List[LostWrite]:
        """Audit every replica of ``group`` against the ACK record.

        Returns one :class:`LostWrite` per ``(offset, hop)`` whose stored
        sequence is behind the highest ACKed sequence for that offset.
        Replicas *ahead* of the ACK record are fine — a write may reach
        the chain without its ACK reaching the client.
        """
        lost: List[LostWrite] = []
        for offset in sorted(self.acked):
            acked_seq = self.acked[offset]
            for hop in range(group.group_size):
                stored = unpack_seq(
                    group.read_replica(hop, offset, SEQ_BYTES))
                if stored < acked_seq:
                    lost.append(LostWrite(offset=offset, hop=hop,
                                          acked_seq=acked_seq,
                                          stored_seq=stored))
        return lost

    def lost_count(self, group: "GroupBase") -> int:
        return len(self.verify(group))
