"""Fan-out replication offloaded to the primary's NIC (§7 extension).

The paper argues its primitives generalize beyond chain replication: "if a
storage application has to rely on a fan-out replication (a single primary
coordinates with multiple backups) such as in FaRM, HyperLoop can be used
to help the client offload the coordination between the primary and
backups from the primary's CPU to the primary's NIC."  This module builds
exactly that:

* the client sends one data WRITE plus one metadata SEND to the
  **primary**;
* the primary's NIC — via the same WAIT + remote-WQE-manipulation
  machinery as the chain — executes its local op and then *fans out* a
  data WRITE + metadata SEND to every backup in parallel;
* every replica (primary and backups) ACKs the **client directly** with a
  WRITE_WITH_IMM carrying its 8-byte result; the client completes the
  operation when all ``g`` ACKs arrived.

No replica CPU runs on the path, including the primary's.

The per-node engines (QPs, cyclic pre-posted slot patterns, the MAX_SGE
fan-out-width bound) live in :mod:`repro.core.fanout_nodes`; this module
holds the client-side handle.

Trade-off vs the chain (the paper's §7 load-balancing point, quantified in
``benchmarks/bench_ablation_fanout.py``): fan-out has fewer sequential
hops, but the primary's egress port serializes ``backups`` copies of every
payload, while the chain spreads transmission across all nodes.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Sequence

from ..backend.base import GroupBase
from ..backend.registry import register
from ..host import Host
from ..rdma.verbs import Access
from ..rdma.wqe import MAX_SGE, WQE_SIZE, Opcode, Sge, WorkRequest, encode_wqe
from .fanout_nodes import (
    _BACKUP_MSG_SIZE,
    _FanoutBackup,
    _FanoutPrimary,
    _PRIMARY_BLOCK_WQES,
)
from .group import GroupConfig
from .metadata import OpKind, OpSpec
from .readpath import ClientReadPath

__all__ = ["FanoutGroup"]

_MAX_REPLICAS = 1 + (MAX_SGE - 2) // 2


@register("fanout", config_cls=GroupConfig,
          description="NIC-offloaded primary/backup fan-out (§7 extension)",
          min_replicas=2, max_replicas=_MAX_REPLICAS)
class FanoutGroup(GroupBase):
    """FaRM-style fan-out replication with the coordination NIC-offloaded.

    Fully API-compatible with :class:`HyperLoopGroup` — gWRITE/gCAS (with
    execute maps)/gMEMCPY/gFLUSH, remote reads, abort — so the entire §5
    storage stack runs over fan-out unchanged.  Limited to 2 backups by
    the scatter-gather budget — see :mod:`repro.core.fanout_nodes`.
    """

    _ids = itertools.count()

    def __init__(self, client_host: Host, replica_hosts: Sequence[Host],
                 config: Optional[GroupConfig] = None, name: str = ""):
        if not 2 <= len(replica_hosts) <= _MAX_REPLICAS:
            raise ValueError(
                "fan-out groups support 2..3 replicas (primary + <=2 "
                "backups) with the current MAX_SGE")
        self.config = config or GroupConfig()
        self.name = name or f"fanout{next(FanoutGroup._ids)}"
        self.client_host = client_host
        self.sim = client_host.sim
        self.group_size = len(replica_hosts)
        self.backup_count = self.group_size - 1
        self.primary = _FanoutPrimary(replica_hosts[0], self)
        self.backups = [_FanoutBackup(host, self, i)
                        for i, host in enumerate(replica_hosts[1:])]
        self._build_client_side()
        self._wire()
        self.primary.prepost(self.config.slots)
        for backup in self.backups:
            backup.prepost(self.config.slots)
        self._init_op_state()
        self._ack_counts: Dict[int, int] = {}
        self.sim.process(self._submitter(), name=f"{self.name}.submitter")
        self.sim.process(self._ack_dispatcher(), name=f"{self.name}.ackdisp")
        self.read_path = ClientReadPath(client_host, self.replicas,
                                        self.name)

    @property
    def replicas(self):
        """All member nodes, primary first (chain-API parity)."""
        return [self.primary] + list(self.backups)

    def close(self) -> None:
        """Tear the group down and return every carved resource."""
        if not self._begin_close():
            return
        primary = self.primary
        nic, memory = primary.host.nic, primary.host.memory
        for qp in ([primary.qp_up, primary.qp_local, primary.qp_ack]
                   + primary.qp_backups):
            nic.destroy_qp(qp)
        nic.deregister_mr(primary.region_mr)
        memory.free(primary.region)
        memory.free(primary.staging)
        for backup in self.backups:
            nic, memory = backup.host.nic, backup.host.memory
            for qp in (backup.qp_up, backup.qp_local, backup.qp_ack):
                nic.destroy_qp(qp)
            nic.deregister_mr(backup.region_mr)
            memory.free(backup.region)
        nic, memory = self.client_host.nic, self.client_host.memory
        nic.destroy_qp(self.qp_out)
        for qp in self.ack_qps:
            nic.destroy_qp(qp)
        nic.deregister_mr(self.ack_mr)
        for allocation in (self.region, self.md_buf, self.ack_buf):
            memory.free(allocation)
        self.read_path.close()

    def abort_in_flight(self, reason: Exception) -> int:
        """Fail every unacknowledged operation (failure detected)."""
        aborted = super().abort_in_flight(reason)
        self._ack_counts.clear()
        return aborted

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_client_side(self) -> None:
        config, memory, nic = self.config, self.client_host.memory, \
            self.client_host.nic
        self.region = memory.allocate(config.region_size,
                                      f"{self.name}.cregion")
        self.md_stride = ((1 + _PRIMARY_BLOCK_WQES * self.backup_count)
                          * WQE_SIZE
                          + WQE_SIZE  # Primary ACK descriptor.
                          + _BACKUP_MSG_SIZE * self.backup_count)
        self.md_buf = memory.allocate(self.md_stride * config.slots,
                                      f"{self.name}.md")
        self.ack_stride = 8 * self.group_size
        self.ack_buf = memory.allocate(self.ack_stride * config.slots,
                                       f"{self.name}.ack")
        self.ack_mr = nic.register_mr(
            self.ack_buf.address, self.ack_buf.size,
            Access.LOCAL_WRITE | Access.REMOTE_WRITE,
            name=f"{self.name}.ackmr")
        self.out_cq = nic.create_cq(name=f"{self.name}.outcq")
        self.ack_cq = nic.create_cq(with_channel=True,
                                    name=f"{self.name}.ackcq")
        self.qp_out = nic.create_qp(self.out_cq, self.out_cq,
                                    sq_slots=4 * config.slots, rq_slots=8,
                                    name=f"{self.name}.out")
        # One inbound ACK QP per replica, all feeding one CQ.
        self.ack_qps = [
            nic.create_qp(self.ack_cq, self.ack_cq, sq_slots=8,
                          rq_slots=config.slots,
                          name=f"{self.name}.ackin{i}")
            for i in range(self.group_size)]
        for qp in self.ack_qps:
            qp.rq.cyclic = True
            for _ in range(self.config.slots):
                qp.post_recv(WorkRequest(Opcode.RECV, [], wr_id=0))
        self.submit_thread = self.client_host.spawn_thread(
            f"{self.name}.submit")
        self.poller = self.client_host.spawn_thread(f"{self.name}.poller")
        self.poller.run_forever()

    def _wire(self) -> None:
        self.qp_out.connect(self.primary.qp_up)
        self.primary.qp_ack.connect(self.ack_qps[0])
        for i, backup in enumerate(self.backups):
            self.primary.qp_backups[i].connect(backup.qp_up)
            backup.qp_ack.connect(self.ack_qps[1 + i])

    # ------------------------------------------------------------------
    # Metadata construction
    # ------------------------------------------------------------------
    def ack_slot_addr(self, slot: int, hop: int) -> int:
        return (self.ack_buf.address
                + (slot % self.config.slots) * self.ack_stride + hop * 8)

    def _local_op_image(self, op: OpSpec, region_addr: int, region_rkey: int,
                        result_addr: int, execute: bool = True) -> bytes:
        if op.kind is OpKind.GCAS and not execute:
            # Selective execution (§4.2): a signaled NOP keeps the ACK
            # chain ticking without touching the lock word.
            return encode_wqe(WorkRequest(Opcode.NOP, signaled=True),
                              owned=True)
        if op.kind is OpKind.GMEMCPY:
            wr = WorkRequest(Opcode.WRITE,
                             [Sge(region_addr + op.src_offset, op.size)],
                             remote_addr=region_addr + op.dst_offset,
                             rkey=region_rkey, signaled=True)
        elif op.kind is OpKind.GCAS:
            wr = WorkRequest(Opcode.CAS, [Sge(result_addr, 8)],
                             remote_addr=region_addr + op.offset,
                             rkey=region_rkey, compare=op.old_value,
                             swap=op.new_value, signaled=True)
        else:
            wr = WorkRequest(Opcode.NOP, signaled=True)
        return encode_wqe(wr, owned=True)

    def _ack_image(self, slot: int, hop: int, result_addr: int) -> bytes:
        wr = WorkRequest(Opcode.WRITE_WITH_IMM, [Sge(result_addr, 8)],
                         remote_addr=self.ack_slot_addr(slot, hop),
                         rkey=self.ack_mr.rkey, imm=slot & 0xFFFFFFFF,
                         signaled=False)
        return encode_wqe(wr, owned=True)

    def _build_metadata(self, op: OpSpec, slot: int) -> bytes:
        primary = self.primary
        # Per-node CAS result scratch: the region's reserved last 8 bytes
        # (the public offset range excludes this tail, see _region_limit).
        primary_result = primary.region.address + primary.region.size - 8
        execute = op.execute_map or [True] * self.group_size
        parts = [self._local_op_image(op, primary.region.address,
                                      primary.region_mr.rkey, primary_result,
                                      execute[0]),
                 self._ack_image(slot, 0, primary_result)]
        for i, backup in enumerate(self.backups):
            write_wr = WorkRequest(Opcode.NOP, signaled=False)
            if op.kind is OpKind.GWRITE and op.size > 0:
                write_wr = WorkRequest(
                    Opcode.WRITE,
                    [Sge(primary.region.address + op.offset, op.size)],
                    remote_addr=backup.region.address + op.offset,
                    rkey=backup.region_mr.rkey, signaled=False)
            flush_wr = WorkRequest(Opcode.NOP, signaled=False)
            if op.durable:
                # Durability fans out too: the primary 0-byte-READs each
                # backup after the data WRITE and before the metadata SEND.
                flush_wr = WorkRequest(
                    Opcode.READ, [Sge(0, 0)],
                    remote_addr=backup.region.address,
                    rkey=backup.region_mr.rkey, signaled=False)
            send_wr = WorkRequest(
                Opcode.SEND, [Sge(primary.staging_slot(slot, i),
                                  _BACKUP_MSG_SIZE)], signaled=False)
            parts.append(encode_wqe(write_wr, owned=True))
            parts.append(encode_wqe(flush_wr, owned=True))
            parts.append(encode_wqe(send_wr, owned=True))
            backup_result = backup.region.address + backup.region.size - 8
            parts.append(self._local_op_image(
                op, backup.region.address, backup.region_mr.rkey,
                backup_result, execute[1 + i]))
            parts.append(self._ack_image(slot, 1 + i, backup_result))
        message = b"".join(parts)
        assert len(message) == self.md_stride
        return message

    def read_replica(self, hop: int, offset: int, size: int) -> bytes:
        node = self.primary if hop == 0 else self.backups[hop - 1]
        return node.host.memory.read(node.region.address + offset, size)

    def _region_limit(self) -> int:
        # The last 64 bytes of each region are reserved for per-node CAS
        # result scratch (see _build_metadata).
        return self.config.region_size - 64

    # ------------------------------------------------------------------
    # Client processes
    # ------------------------------------------------------------------
    def _submitter(self):
        config = self.config
        primary = self.primary
        while True:
            op, done, slot = yield from self._dequeue()
            self._ack_counts[slot] = 0
            build_ns = (config.meta_build_base_ns
                        + config.meta_build_per_hop_ns * self.group_size)
            yield self.submit_thread.run(build_ns)
            message = self._build_metadata(op, slot)
            md_addr = self.md_buf.address \
                + (slot % config.slots) * self.md_stride
            self.client_host.memory.write(md_addr, message)
            posts = 1
            if op.kind is OpKind.GWRITE and op.size > 0:
                self.qp_out.post_send(WorkRequest(
                    Opcode.WRITE,
                    [Sge(self.region.address + op.offset, op.size)],
                    remote_addr=primary.region.address + op.offset,
                    rkey=primary.region_mr.rkey, signaled=False))
                posts += 1
            if op.kind is OpKind.GMEMCPY:
                self.client_host.memory.copy_within(
                    self.region.address + op.src_offset,
                    self.region.address + op.dst_offset, op.size)
            if op.durable or op.kind is OpKind.GFLUSH:
                self.qp_out.post_send(WorkRequest(
                    Opcode.READ, [Sge(0, 0)],
                    remote_addr=primary.region.address,
                    rkey=primary.region_mr.rkey, signaled=False))
                posts += 1
            self.qp_out.post_send(WorkRequest(
                Opcode.SEND, [Sge(md_addr, len(message))], signaled=False))
            yield self.submit_thread.run(posts * config.post_ns)

    def _ack_dispatcher(self):
        sim, config = self.sim, self.config
        channel = self.ack_cq.channel
        while True:
            self.ack_cq.req_notify()
            yield channel.wait()
            yield self.poller.when_running()
            yield config.poll_overhead_ns  # bare-delay fast path
            for wc in self.ack_cq.poll(64):
                if not wc.has_imm:
                    continue
                slot = wc.imm
                if slot not in self._ack_counts:
                    continue
                self._ack_counts[slot] += 1
                if self._ack_counts[slot] < self.group_size:
                    continue
                del self._ack_counts[slot]
                done = self._pop_acked(slot)
                self._release_window_waiters()
                if done is None or done.triggered:
                    continue
                base = self.ack_buf.address \
                    + (slot % config.slots) * self.ack_stride
                result_map = self.client_host.memory.read(base,
                                                          self.ack_stride)
                self._finish(done, slot, result_map)
