"""Fan-out replication offloaded to the primary's NIC (§7 extension).

The paper argues its primitives generalize beyond chain replication: "if a
storage application has to rely on a fan-out replication (a single primary
coordinates with multiple backups) such as in FaRM, HyperLoop can be used
to help the client offload the coordination between the primary and
backups from the primary's CPU to the primary's NIC."  This module builds
exactly that:

* the client sends one data WRITE plus one metadata SEND to the
  **primary**;
* the primary's NIC — via the same WAIT + remote-WQE-manipulation
  machinery as the chain — executes its local op and then *fans out* a
  data WRITE + metadata SEND to every backup in parallel;
* every replica (primary and backups) ACKs the **client directly** with a
  WRITE_WITH_IMM carrying its 8-byte result; the client completes the
  operation when all ``g`` ACKs arrived.

No replica CPU runs on the path, including the primary's.

Scatter-gather arithmetic bounds the fan-out width: patching the primary
needs ``1 + 2×backups`` scatter segments, so with ``MAX_SGE = 6`` a group
supports up to 2 backups (replication factor 3 — the common deployment).

Trade-off vs the chain (the paper's §7 load-balancing point, quantified in
``benchmarks/bench_ablation_fanout.py``): fan-out has fewer sequential
hops, but the primary's egress port serializes ``backups`` copies of every
payload, while the chain spreads transmission across all nodes.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

from ..host import Host
from ..rdma.verbs import Access
from ..rdma.wqe import MAX_SGE, WQE_SIZE, Opcode, Sge, WorkRequest, encode_wqe
from ..sim.engine import Event
from .group import GroupConfig, OpResult
from .metadata import OpKind, OpSpec
from .readpath import ClientReadPath

__all__ = ["FanoutGroup"]

#: Descriptors patched per backup on the primary (forward WRITE + flush
#: READ + SEND).
_PRIMARY_BLOCK_WQES = 3
#: Descriptors patched on each backup (local op + client ACK).
_BACKUP_BLOCK_WQES = 2
_BACKUP_MSG_SIZE = _BACKUP_BLOCK_WQES * WQE_SIZE


class _FanoutPrimary:
    """The primary: local-op QP plus one fan-out QP per backup."""

    def __init__(self, host: Host, group: "FanoutGroup"):
        self.host = host
        self.group = group
        config = group.config
        memory, nic = host.memory, host.nic
        self.name = f"{group.name}.primary"
        self.region = memory.allocate(config.region_size, f"{self.name}.region")
        self.region_mr = nic.register_mr(
            self.region.address, self.region.size,
            Access.LOCAL_WRITE | Access.REMOTE_WRITE | Access.REMOTE_READ
            | Access.REMOTE_ATOMIC, name=f"{self.name}.region")
        backups = group.backup_count
        # Staging for each backup's outgoing metadata message.
        self.staging = memory.allocate(
            _BACKUP_MSG_SIZE * backups * config.slots, f"{self.name}.staging")
        self.up_cq = nic.create_cq(name=f"{self.name}.upcq")
        self.local_cq = nic.create_cq(name=f"{self.name}.localcq")
        self.out_cq = nic.create_cq(name=f"{self.name}.outcq")
        self.qp_up = nic.create_qp(self.out_cq, self.up_cq, sq_slots=8,
                                   rq_slots=config.slots,
                                   name=f"{self.name}.up")
        self.qp_local = nic.create_qp(self.local_cq, self.local_cq,
                                      sq_slots=2 * config.slots, rq_slots=8,
                                      name=f"{self.name}.local")
        self.qp_local.connect(self.qp_local)
        self.qp_ack = nic.create_qp(self.out_cq, self.out_cq,
                                    sq_slots=2 * config.slots, rq_slots=8,
                                    name=f"{self.name}.ack")
        self.qp_backups = [
            nic.create_qp(self.out_cq, self.out_cq,
                          sq_slots=4 * config.slots, rq_slots=8,
                          name=f"{self.name}.out{i}")
            for i in range(backups)]
        self.qp_up.rq.cyclic = True
        self.qp_local.sq.cyclic = True
        self.qp_ack.sq.cyclic = True
        for qp in self.qp_backups:
            qp.sq.cyclic = True

    def staging_slot(self, slot: int, backup: int) -> int:
        config = self.group.config
        per_slot = _BACKUP_MSG_SIZE * self.group.backup_count
        return (self.staging.address
                + (slot % config.slots) * per_slot
                + backup * _BACKUP_MSG_SIZE)

    def post_slot(self, slot: int) -> None:
        """Pre-post one op's WQE chain (consume-mode WAITs, cyclic rings)."""
        placeholder = WorkRequest(Opcode.NOP, signaled=False)
        # Local op: gated on the metadata RECV.
        self.qp_local.post_send(WorkRequest(
            Opcode.WAIT, wait_cq=self.up_cq.cq_id, wait_count=0,
            signaled=False))
        local_idx = self.qp_local.post_send(placeholder, owned=False)
        # Primary ACK to client: gated on the local op's completion.
        self.qp_ack.post_send(WorkRequest(
            Opcode.WAIT, wait_cq=self.local_cq.cq_id, wait_count=0,
            signaled=False))
        ack_idx = self.qp_ack.post_send(placeholder, owned=False)
        # Per-backup fan-out: data WRITE + metadata SEND, gated on the
        # local op so gCAS/gMEMCPY results/ordering hold.
        sg = [Sge(self.qp_local.sq.slot_address(local_idx), WQE_SIZE),
              Sge(self.qp_ack.sq.slot_address(ack_idx), WQE_SIZE)]
        for backup, qp in enumerate(self.qp_backups):
            qp.post_send(WorkRequest(
                Opcode.WAIT, wait_cq=self.local_cq.cq_id, wait_count=0,
                signaled=False))
            write_idx = qp.post_send(placeholder, owned=False)
            flush_idx = qp.post_send(placeholder, owned=False)
            send_idx = qp.post_send(placeholder, owned=False)
            if send_idx != write_idx + 2 or flush_idx != write_idx + 1:
                raise RuntimeError("fan-out block not contiguous")
            sg.append(Sge(qp.sq.slot_address(write_idx),
                          _PRIMARY_BLOCK_WQES * WQE_SIZE))
            sg.append(Sge(self.staging_slot(slot, backup), _BACKUP_MSG_SIZE))
        if len(sg) > MAX_SGE:
            raise RuntimeError("too many backups for the scatter list")
        self.qp_up.post_recv(WorkRequest(Opcode.RECV, sg, wr_id=slot))

    def prepost(self, count: int) -> None:
        for slot in range(count):
            self.post_slot(slot)


class _FanoutBackup:
    """A backup: receives data+metadata from the primary, ACKs the client."""

    def __init__(self, host: Host, group: "FanoutGroup", index: int):
        self.host = host
        self.group = group
        self.index = index
        config = group.config
        memory, nic = host.memory, host.nic
        self.name = f"{group.name}.backup{index}"
        self.region = memory.allocate(config.region_size, f"{self.name}.region")
        self.region_mr = nic.register_mr(
            self.region.address, self.region.size,
            Access.LOCAL_WRITE | Access.REMOTE_WRITE | Access.REMOTE_READ
            | Access.REMOTE_ATOMIC, name=f"{self.name}.region")
        self.up_cq = nic.create_cq(name=f"{self.name}.upcq")
        self.local_cq = nic.create_cq(name=f"{self.name}.localcq")
        self.qp_up = nic.create_qp(self.local_cq, self.up_cq, sq_slots=8,
                                   rq_slots=config.slots,
                                   name=f"{self.name}.up")
        self.qp_local = nic.create_qp(self.local_cq, self.local_cq,
                                      sq_slots=2 * config.slots, rq_slots=8,
                                      name=f"{self.name}.local")
        self.qp_local.connect(self.qp_local)
        self.qp_ack = nic.create_qp(self.local_cq, self.local_cq,
                                    sq_slots=2 * config.slots, rq_slots=8,
                                    name=f"{self.name}.ack")
        self.qp_up.rq.cyclic = True
        self.qp_local.sq.cyclic = True
        self.qp_ack.sq.cyclic = True

    def post_slot(self, slot: int) -> None:
        placeholder = WorkRequest(Opcode.NOP, signaled=False)
        self.qp_local.post_send(WorkRequest(
            Opcode.WAIT, wait_cq=self.up_cq.cq_id, wait_count=0,
            signaled=False))
        local_idx = self.qp_local.post_send(placeholder, owned=False)
        self.qp_ack.post_send(WorkRequest(
            Opcode.WAIT, wait_cq=self.local_cq.cq_id, wait_count=0,
            signaled=False))
        ack_idx = self.qp_ack.post_send(placeholder, owned=False)
        self.qp_up.post_recv(WorkRequest(Opcode.RECV, [
            Sge(self.qp_local.sq.slot_address(local_idx), WQE_SIZE),
            Sge(self.qp_ack.sq.slot_address(ack_idx), WQE_SIZE),
        ], wr_id=slot))

    def prepost(self, count: int) -> None:
        for slot in range(count):
            self.post_slot(slot)


class FanoutGroup:
    """FaRM-style fan-out replication with the coordination NIC-offloaded.

    Fully API-compatible with :class:`HyperLoopGroup` — gWRITE/gCAS (with
    execute maps)/gMEMCPY/gFLUSH, remote reads, abort — so the entire §5
    storage stack runs over fan-out unchanged.  Limited to 2 backups by
    the scatter-gather budget — see the module docstring.
    """

    _ids = itertools.count()

    def __init__(self, client_host: Host, replica_hosts: Sequence[Host],
                 config: Optional[GroupConfig] = None, name: str = ""):
        if not 2 <= len(replica_hosts) <= 1 + (MAX_SGE - 2) // 2:
            raise ValueError(
                "fan-out groups support 2..3 replicas (primary + <=2 "
                "backups) with the current MAX_SGE")
        self.config = config or GroupConfig()
        self.name = name or f"fanout{next(FanoutGroup._ids)}"
        self.client_host = client_host
        self.sim = client_host.sim
        self.group_size = len(replica_hosts)
        self.backup_count = self.group_size - 1
        self.primary = _FanoutPrimary(replica_hosts[0], self)
        self.backups = [_FanoutBackup(host, self, i)
                        for i, host in enumerate(replica_hosts[1:])]
        self._build_client_side()
        self._wire()
        self.primary.prepost(self.config.slots)
        for backup in self.backups:
            backup.prepost(self.config.slots)
        self._next_slot = 0
        self._acked = 0
        self._ack_counts: Dict[int, int] = {}
        self._ack_events: Dict[int, Event] = {}
        self._window_waiters: List[Event] = []
        self._submit_queue: List = []
        self._submit_kick: Optional[Event] = None
        self.sim.process(self._submitter(), name=f"{self.name}.submitter")
        self.sim.process(self._ack_dispatcher(), name=f"{self.name}.ackdisp")
        self.read_path = ClientReadPath(client_host, self.replicas,
                                        self.name)

    @property
    def replicas(self):
        """All member nodes, primary first (chain-API parity)."""
        return [self.primary] + list(self.backups)

    def remote_read(self, hop: int, offset: int, size: int) -> Event:
        """One-sided READ of a member's region (primary is hop 0)."""
        self._check_range(offset, size)
        return self.read_path.read(hop, offset, size)

    def gflush(self) -> Event:
        """Flush every member's NIC cache to NVM (primary, then backups)."""
        return self.submit(OpSpec(OpKind.GFLUSH, durable=True))

    def close(self) -> None:
        """Tear the group down and return every carved resource."""
        if getattr(self, "_closed", False):
            return
        self._closed = True
        self.abort_in_flight(RuntimeError(f"{self.name} closed"))
        primary = self.primary
        nic, memory = primary.host.nic, primary.host.memory
        for qp in ([primary.qp_up, primary.qp_local, primary.qp_ack]
                   + primary.qp_backups):
            nic.destroy_qp(qp)
        nic.deregister_mr(primary.region_mr)
        memory.free(primary.region)
        memory.free(primary.staging)
        for backup in self.backups:
            nic, memory = backup.host.nic, backup.host.memory
            for qp in (backup.qp_up, backup.qp_local, backup.qp_ack):
                nic.destroy_qp(qp)
            nic.deregister_mr(backup.region_mr)
            memory.free(backup.region)
        nic, memory = self.client_host.nic, self.client_host.memory
        nic.destroy_qp(self.qp_out)
        for qp in self.ack_qps:
            nic.destroy_qp(qp)
        nic.deregister_mr(self.ack_mr)
        for allocation in (self.region, self.md_buf, self.ack_buf):
            memory.free(allocation)
        self.read_path.close()

    def abort_in_flight(self, reason: Exception) -> int:
        """Fail every unacknowledged operation (failure detected)."""
        aborted = 0
        for event in list(self._ack_events.values()):
            if not event.triggered:
                event.fail(reason)
                aborted += 1
        self._ack_events.clear()
        self._ack_counts.clear()
        for _op, done in self._submit_queue:
            if not done.triggered:
                done.fail(reason)
                aborted += 1
        self._submit_queue.clear()
        self._acked = self._next_slot
        return aborted

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_client_side(self) -> None:
        config, memory, nic = self.config, self.client_host.memory, \
            self.client_host.nic
        self.region = memory.allocate(config.region_size,
                                      f"{self.name}.cregion")
        self.md_stride = ((1 + _PRIMARY_BLOCK_WQES * self.backup_count)
                          * WQE_SIZE
                          + WQE_SIZE  # Primary ACK descriptor.
                          + _BACKUP_MSG_SIZE * self.backup_count)
        self.md_buf = memory.allocate(self.md_stride * config.slots,
                                      f"{self.name}.md")
        self.ack_stride = 8 * self.group_size
        self.ack_buf = memory.allocate(self.ack_stride * config.slots,
                                       f"{self.name}.ack")
        self.ack_mr = nic.register_mr(
            self.ack_buf.address, self.ack_buf.size,
            Access.LOCAL_WRITE | Access.REMOTE_WRITE,
            name=f"{self.name}.ackmr")
        self.out_cq = nic.create_cq(name=f"{self.name}.outcq")
        self.ack_cq = nic.create_cq(with_channel=True,
                                    name=f"{self.name}.ackcq")
        self.qp_out = nic.create_qp(self.out_cq, self.out_cq,
                                    sq_slots=4 * config.slots, rq_slots=8,
                                    name=f"{self.name}.out")
        # One inbound ACK QP per replica, all feeding one CQ.
        self.ack_qps = [
            nic.create_qp(self.ack_cq, self.ack_cq, sq_slots=8,
                          rq_slots=config.slots,
                          name=f"{self.name}.ackin{i}")
            for i in range(self.group_size)]
        for qp in self.ack_qps:
            qp.rq.cyclic = True
            for _ in range(self.config.slots):
                qp.post_recv(WorkRequest(Opcode.RECV, [], wr_id=0))
        self.submit_thread = self.client_host.spawn_thread(
            f"{self.name}.submit")
        self.poller = self.client_host.spawn_thread(f"{self.name}.poller")
        self.poller.run_forever()

    def _wire(self) -> None:
        self.qp_out.connect(self.primary.qp_up)
        self.primary.qp_ack.connect(self.ack_qps[0])
        for i, backup in enumerate(self.backups):
            self.primary.qp_backups[i].connect(backup.qp_up)
            backup.qp_ack.connect(self.ack_qps[1 + i])

    # ------------------------------------------------------------------
    # Metadata construction
    # ------------------------------------------------------------------
    def ack_slot_addr(self, slot: int, hop: int) -> int:
        return (self.ack_buf.address
                + (slot % self.config.slots) * self.ack_stride + hop * 8)

    def _local_op_image(self, op: OpSpec, region_addr: int, region_rkey: int,
                        result_addr: int, execute: bool = True) -> bytes:
        if op.kind is OpKind.GCAS and not execute:
            # Selective execution (§4.2): a signaled NOP keeps the ACK
            # chain ticking without touching the lock word.
            return encode_wqe(WorkRequest(Opcode.NOP, signaled=True),
                              owned=True)
        if op.kind is OpKind.GMEMCPY:
            wr = WorkRequest(Opcode.WRITE,
                             [Sge(region_addr + op.src_offset, op.size)],
                             remote_addr=region_addr + op.dst_offset,
                             rkey=region_rkey, signaled=True)
        elif op.kind is OpKind.GCAS:
            wr = WorkRequest(Opcode.CAS, [Sge(result_addr, 8)],
                             remote_addr=region_addr + op.offset,
                             rkey=region_rkey, compare=op.old_value,
                             swap=op.new_value, signaled=True)
        else:
            wr = WorkRequest(Opcode.NOP, signaled=True)
        return encode_wqe(wr, owned=True)

    def _ack_image(self, slot: int, hop: int, result_addr: int) -> bytes:
        wr = WorkRequest(Opcode.WRITE_WITH_IMM, [Sge(result_addr, 8)],
                         remote_addr=self.ack_slot_addr(slot, hop),
                         rkey=self.ack_mr.rkey, imm=slot & 0xFFFFFFFF,
                         signaled=False)
        return encode_wqe(wr, owned=True)

    def _build_metadata(self, op: OpSpec, slot: int) -> bytes:
        primary = self.primary
        # Per-node CAS result scratch: the region's reserved last 8 bytes
        # (the public offset range excludes this tail, see _check_range).
        primary_result = primary.region.address + primary.region.size - 8
        execute = op.execute_map or [True] * self.group_size
        parts = [self._local_op_image(op, primary.region.address,
                                      primary.region_mr.rkey, primary_result,
                                      execute[0]),
                 self._ack_image(slot, 0, primary_result)]
        for i, backup in enumerate(self.backups):
            write_wr = WorkRequest(Opcode.NOP, signaled=False)
            if op.kind is OpKind.GWRITE and op.size > 0:
                write_wr = WorkRequest(
                    Opcode.WRITE,
                    [Sge(primary.region.address + op.offset, op.size)],
                    remote_addr=backup.region.address + op.offset,
                    rkey=backup.region_mr.rkey, signaled=False)
            flush_wr = WorkRequest(Opcode.NOP, signaled=False)
            if op.durable:
                # Durability fans out too: the primary 0-byte-READs each
                # backup after the data WRITE and before the metadata SEND.
                flush_wr = WorkRequest(
                    Opcode.READ, [Sge(0, 0)],
                    remote_addr=backup.region.address,
                    rkey=backup.region_mr.rkey, signaled=False)
            send_wr = WorkRequest(
                Opcode.SEND, [Sge(primary.staging_slot(slot, i),
                                  _BACKUP_MSG_SIZE)], signaled=False)
            parts.append(encode_wqe(write_wr, owned=True))
            parts.append(encode_wqe(flush_wr, owned=True))
            parts.append(encode_wqe(send_wr, owned=True))
            backup_result = backup.region.address + backup.region.size - 8
            parts.append(self._local_op_image(
                op, backup.region.address, backup.region_mr.rkey,
                backup_result, execute[1 + i]))
            parts.append(self._ack_image(slot, 1 + i, backup_result))
        message = b"".join(parts)
        assert len(message) == self.md_stride
        return message

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def gwrite(self, offset: int, size: int, durable: bool = False) -> Event:
        self._check_range(offset, size)
        return self.submit(OpSpec(OpKind.GWRITE, offset=offset, size=size,
                                  durable=durable))

    def gcas(self, offset: int, old_value: int, new_value: int,
             execute_map=None, durable: bool = False) -> Event:
        if execute_map is not None and len(execute_map) != self.group_size:
            raise ValueError("execute map size mismatch")
        self._check_range(offset, 8)
        return self.submit(OpSpec(OpKind.GCAS, offset=offset,
                                  old_value=old_value, new_value=new_value,
                                  execute_map=list(execute_map)
                                  if execute_map is not None else None,
                                  durable=durable))

    def gmemcpy(self, src_offset: int, dst_offset: int, size: int,
                durable: bool = False) -> Event:
        self._check_range(src_offset, size)
        self._check_range(dst_offset, size)
        return self.submit(OpSpec(OpKind.GMEMCPY, src_offset=src_offset,
                                  dst_offset=dst_offset, size=size,
                                  durable=durable))

    def submit(self, op: OpSpec) -> Event:
        done = self.sim.event()
        done.issue_time = self.sim.now  # type: ignore[attr-defined]
        self._submit_queue.append((op, done))
        if self._submit_kick is not None and not self._submit_kick.triggered:
            self._submit_kick.succeed()
        return done

    def write_local(self, offset: int, data: bytes) -> None:
        self._check_range(offset, len(data))
        self.client_host.memory.write(self.region.address + offset, data)

    def read_local(self, offset: int, size: int) -> bytes:
        self._check_range(offset, size)
        return self.client_host.memory.read(self.region.address + offset,
                                            size)

    def read_replica(self, hop: int, offset: int, size: int) -> bytes:
        node = self.primary if hop == 0 else self.backups[hop - 1]
        return node.host.memory.read(node.region.address + offset, size)

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0 \
                or offset + size > self.config.region_size - 64:
            raise ValueError("outside the replicated region")

    @property
    def in_flight(self) -> int:
        return self._next_slot - self._acked

    # ------------------------------------------------------------------
    # Client processes
    # ------------------------------------------------------------------
    def _submitter(self):
        sim, config = self.sim, self.config
        primary = self.primary
        while True:
            if not self._submit_queue:
                self._submit_kick = sim.event()
                yield self._submit_kick
                continue
            op, done = self._submit_queue.pop(0)
            while self.in_flight >= config.slots:
                waiter = sim.event()
                self._window_waiters.append(waiter)
                yield waiter
            slot = self._next_slot
            self._next_slot += 1
            self._ack_events[slot] = done
            self._ack_counts[slot] = 0
            build_ns = (config.meta_build_base_ns
                        + config.meta_build_per_hop_ns * self.group_size)
            yield self.submit_thread.run(build_ns)
            message = self._build_metadata(op, slot)
            md_addr = self.md_buf.address \
                + (slot % config.slots) * self.md_stride
            self.client_host.memory.write(md_addr, message)
            posts = 1
            if op.kind is OpKind.GWRITE and op.size > 0:
                self.qp_out.post_send(WorkRequest(
                    Opcode.WRITE,
                    [Sge(self.region.address + op.offset, op.size)],
                    remote_addr=primary.region.address + op.offset,
                    rkey=primary.region_mr.rkey, signaled=False))
                posts += 1
            if op.kind is OpKind.GMEMCPY:
                self.client_host.memory.copy_within(
                    self.region.address + op.src_offset,
                    self.region.address + op.dst_offset, op.size)
            if op.durable or op.kind is OpKind.GFLUSH:
                self.qp_out.post_send(WorkRequest(
                    Opcode.READ, [Sge(0, 0)],
                    remote_addr=primary.region.address,
                    rkey=primary.region_mr.rkey, signaled=False))
                posts += 1
            self.qp_out.post_send(WorkRequest(
                Opcode.SEND, [Sge(md_addr, len(message))], signaled=False))
            yield self.submit_thread.run(posts * config.post_ns)

    def _ack_dispatcher(self):
        sim, config = self.sim, self.config
        channel = self.ack_cq.channel
        while True:
            self.ack_cq.req_notify()
            yield channel.wait()
            yield self.poller.when_running()
            yield sim.timeout(config.poll_overhead_ns)
            for wc in self.ack_cq.poll(64):
                if not wc.has_imm:
                    continue
                slot = wc.imm
                if slot not in self._ack_counts:
                    continue
                self._ack_counts[slot] += 1
                if self._ack_counts[slot] < self.group_size:
                    continue
                del self._ack_counts[slot]
                done = self._ack_events.pop(slot, None)
                self._acked += 1
                if self._window_waiters:
                    waiters, self._window_waiters = self._window_waiters, []
                    for waiter in waiters:
                        waiter.succeed()
                if done is None or done.triggered:
                    continue
                base = self.ack_buf.address \
                    + (slot % config.slots) * self.ack_stride
                result_map = self.client_host.memory.read(base,
                                                          self.ack_stride)
                issue = getattr(done, "issue_time", sim.now)
                done.succeed(OpResult(slot=slot,
                                      latency_ns=sim.now - issue,
                                      result_map=result_map))
