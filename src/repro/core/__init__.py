"""HyperLoop core: group-based NIC-offloading primitives (the paper's contribution)."""

from .metadata import (
    ENTRY_SIZE,
    ClientLayout,
    NodeLayout,
    OpKind,
    OpSpec,
    build_metadata,
    meta_len,
    result_map_len,
)
from .fanout import FanoutGroup
from .multiclient import SharedChain, SharedChainClient
from .client import ReplicatedStore, StoreConfig, initialize, recover
from .group import GroupConfig, HyperLoopGroup, OpResult, ReplicaEngine

__all__ = [
    "ENTRY_SIZE",
    "ClientLayout",
    "NodeLayout",
    "OpKind",
    "OpSpec",
    "build_metadata",
    "meta_len",
    "result_map_len",
    "FanoutGroup",
    "SharedChain",
    "SharedChainClient",
    "ReplicatedStore",
    "StoreConfig",
    "initialize",
    "recover",
    "GroupConfig",
    "HyperLoopGroup",
    "OpResult",
    "ReplicaEngine",
]
