"""Metadata wire format for HyperLoop group operations.

The client (transaction coordinator) precomputes, for every replica in the
chain, the descriptor images that the replica's NIC must execute for one
operation, and ships them in a single metadata SEND (§4.1, Figure 5).  Each
replica's pre-posted RECV scatters the message so that

* the first :data:`ENTRY_SIZE` bytes land **directly on that replica's four
  pre-posted WQE descriptors** (local op, forward-data, forward-flush,
  forward-metadata) — patching their memory descriptors and setting their
  ownership bits in one DMA, and
* the remainder (the entries for downstream replicas plus the running gCAS
  result map) lands in the replica's per-slot *staging buffer*, from which
  the patched forward-metadata SEND re-transmits it to the next hop.

Message layout for the hop reaching replica ``r`` (0-based) in a group of
``g`` replicas::

    [ entry_r | entry_{r+1} | ... | entry_{g-1} | result_map (8*g bytes) ]

where every entry is four serialized WQE images (4 × WQE_SIZE bytes).  The
paper ships compact ≤32-byte descriptors because its driver pre-arranges all
constant WQE fields; we ship whole descriptor images instead so that the
scatter-patch is a plain DMA with no driver-side reassembly — the mechanism
is identical, the metadata is just less compact (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..backend.ops import OpKind, OpSpec
from ..rdma.wqe import Opcode, Sge, WorkRequest, encode_wqe

__all__ = [
    "ENTRY_WQES",
    "ENTRY_SIZE",
    "OpKind",
    "OpSpec",
    "NodeLayout",
    "ClientLayout",
    "meta_len",
    "staging_len",
    "result_map_len",
    "result_offset_in_staging",
    "build_metadata",
]

from ..rdma.wqe import WQE_SIZE

ENTRY_WQES = 4
ENTRY_SIZE = ENTRY_WQES * WQE_SIZE


@dataclass
class NodeLayout:
    """What the client must know about one replica (exchanged at setup)."""

    name: str
    region_addr: int           # Base of the replicated region (log + db).
    region_rkey: int
    staging_addr: int          # Base of the staging-slot array.
    staging_stride: int        # Bytes between consecutive staging slots.
    slots: int                 # Pipeline depth S (staging slots are reused
    #                            modulo this).

    def staging_slot(self, slot: int) -> int:
        return self.staging_addr + (slot % self.slots) * self.staging_stride


@dataclass
class ClientLayout:
    """What the tail replica must know about the client's ACK buffers."""

    ack_addr: int
    ack_rkey: int
    ack_stride: int
    slots: int

    def ack_slot(self, slot: int) -> int:
        return self.ack_addr + (slot % self.slots) * self.ack_stride


def result_map_len(group_size: int) -> int:
    """The gCAS result map: one 8-byte field per replica (§4.2)."""
    return 8 * group_size


def meta_len(group_size: int, hop: int) -> int:
    """Size of the metadata message arriving at replica ``hop`` (0-based)."""
    if not 0 <= hop < group_size:
        raise ValueError(f"hop {hop} outside group of {group_size}")
    return (group_size - hop) * ENTRY_SIZE + result_map_len(group_size)


def staging_len(group_size: int, hop: int) -> int:
    """Bytes replica ``hop`` stages: downstream entries + result map."""
    return meta_len(group_size, hop) - ENTRY_SIZE


def max_staging_len(group_size: int) -> int:
    return staging_len(group_size, 0)


def result_offset_in_staging(group_size: int, hop: int) -> int:
    """Offset of the result map inside replica ``hop``'s staging buffer."""
    return (group_size - 1 - hop) * ENTRY_SIZE


def _nop() -> WorkRequest:
    return WorkRequest(Opcode.NOP, signaled=False)


def _local_op(op: OpSpec, hop: int, node: NodeLayout, slot: int,
              group_size: int) -> WorkRequest:
    """The per-replica local operation (executed on the loopback QP).

    Always signaled: its CQE is what the downstream WAIT counts.
    """
    if op.kind is OpKind.GMEMCPY:
        # Local DMA copy, log region -> database region (§4.2, Figure 7).
        return WorkRequest(
            Opcode.WRITE,
            [Sge(node.region_addr + op.src_offset, op.size)],
            remote_addr=node.region_addr + op.dst_offset,
            rkey=node.region_rkey, signaled=True)
    if op.kind is OpKind.GCAS:
        execute = op.execute_map[hop] if op.execute_map is not None else True
        if not execute:
            # Selective execution: the descriptor becomes a NOP but still
            # completes, so the forwarding WAIT chain keeps counting (§4.2).
            return WorkRequest(Opcode.NOP, signaled=True)
        result_addr = (node.staging_slot(slot)
                       + result_offset_in_staging(group_size, hop) + hop * 8)
        return WorkRequest(
            Opcode.CAS, [Sge(result_addr, 8)],
            remote_addr=node.region_addr + op.offset,
            rkey=node.region_rkey,
            compare=op.old_value, swap=op.new_value, signaled=True)
    # gWRITE and gFLUSH need no local work beyond what the inbound WRITE /
    # flush already did; a signaled NOP keeps the chain ticking.
    return WorkRequest(Opcode.NOP, signaled=True)


def _forward_data(op: OpSpec, node: NodeLayout,
                  next_node: Optional[NodeLayout]) -> WorkRequest:
    """Forward the payload to the next replica (gWRITE only)."""
    if next_node is None or op.kind is not OpKind.GWRITE or op.size == 0:
        return _nop()
    return WorkRequest(
        Opcode.WRITE,
        [Sge(node.region_addr + op.offset, op.size)],
        remote_addr=next_node.region_addr + op.offset,
        rkey=next_node.region_rkey, signaled=False)


def _forward_flush(op: OpSpec,
                   next_node: Optional[NodeLayout]) -> WorkRequest:
    """A 0-byte READ that forces the *next* NIC to drain its cache.

    Issued for durable operations and standalone gFLUSH.  FIFO delivery
    guarantees the flush lands after the data WRITE and before the metadata
    SEND, so durability propagates hop by hop in order (§4.2).
    """
    if next_node is None or not (op.durable or op.kind is OpKind.GFLUSH):
        return _nop()
    return WorkRequest(
        Opcode.READ, [Sge(0, 0)],
        remote_addr=next_node.region_addr,
        rkey=next_node.region_rkey, signaled=False)


def _forward_meta(node: NodeLayout, next_node: Optional[NodeLayout],
                  client: ClientLayout, slot: int,
                  group_size: int, hop: int) -> WorkRequest:
    """Forward remaining metadata, or — at the tail — ACK the client."""
    if next_node is not None:
        return WorkRequest(
            Opcode.SEND,
            [Sge(node.staging_slot(slot), staging_len(group_size, hop))],
            signaled=False)
    result_addr = (node.staging_slot(slot)
                   + result_offset_in_staging(group_size, hop))
    return WorkRequest(
        Opcode.WRITE_WITH_IMM,
        [Sge(result_addr, result_map_len(group_size))],
        remote_addr=client.ack_slot(slot),
        rkey=client.ack_rkey,
        imm=slot & 0xFFFFFFFF, signaled=False)


def build_metadata(op: OpSpec, layouts: List[NodeLayout],
                   client: ClientLayout, slot: int) -> bytes:
    """Build the full metadata message the client sends to the head replica.

    The returned bytes are ``meta_len(g, 0)`` long: one four-WQE entry per
    replica followed by a zeroed result map.
    """
    group_size = len(layouts)
    if group_size == 0:
        raise ValueError("empty group")
    op.validate(group_size)
    parts: List[bytes] = []
    for hop, node in enumerate(layouts):
        next_node = layouts[hop + 1] if hop + 1 < group_size else None
        entry = b"".join((
            encode_wqe(_local_op(op, hop, node, slot, group_size), owned=True),
            encode_wqe(_forward_data(op, node, next_node), owned=True),
            encode_wqe(_forward_flush(op, next_node), owned=True),
            encode_wqe(_forward_meta(node, next_node, client, slot,
                                     group_size, hop), owned=True),
        ))
        parts.append(entry)
    parts.append(bytes(result_map_len(group_size)))
    message = b"".join(parts)
    assert len(message) == meta_len(group_size, 0)
    return message
