"""HyperLoop group construction and the NIC-offloaded data path.

A HyperLoop group (Figure 3) is a chain::

    client ──▶ replica 0 ──▶ replica 1 ──▶ … ──▶ replica g-1 ──▶ client (ACK)

The replica-side half of the chain — memory carve-outs, the three QPs per
replica, and the pre-posted cyclic WQE pattern — lives in
:class:`~repro.core.chain.ReplicaEngine`.  This module holds the
client-side handle: :class:`HyperLoopGroup` builds the chain once, then
turns each submitted :class:`~repro.backend.ops.OpSpec` into one metadata
SEND (plus payload WRITE / flush READ) so the replicas' NICs execute the
whole operation without touching their CPUs.

The shared client-side machinery (submission pipeline, ACK table, region
accessors, abort/close) comes from :class:`~repro.backend.base.GroupBase`;
this class contributes only what is chain-specific.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

from ..backend.api import OpResult
from ..backend.base import GroupBase
from ..backend.registry import register
from ..host import Host
from ..rdma.verbs import Access
from ..rdma.wqe import Opcode, Sge, WorkRequest
from .chain import ReplicaEngine
from .metadata import (
    ClientLayout,
    OpKind,
    build_metadata,
    meta_len,
    result_map_len,
)
from .readpath import ClientReadPath

__all__ = ["GroupConfig", "ReplicaEngine", "HyperLoopGroup", "OpResult"]


@dataclass
class GroupConfig:
    """Tunables for one HyperLoop group."""

    region_size: int = 16 << 20      # Replicated region (log + db + locks).
    slots: int = 512                 # Pipeline depth S (max ops in flight).
    client_mode: str = "polling"     # "polling" | "event" ACK detection.
    meta_build_base_ns: int = 300    # Client CPU: metadata construction.
    meta_build_per_hop_ns: int = 120
    post_ns: int = 100               # Client CPU per posted work request.
    poll_overhead_ns: int = 150      # Poll-mode CQ check cost.
    event_wakeup_service_ns: int = 1000  # Event-mode post-wakeup handling.


@register("hyperloop", config_cls=GroupConfig,
          description="NIC-offloaded chain replication (the paper's design)")
class HyperLoopGroup(GroupBase):
    """Client-side handle: build the chain once, then issue group ops.

    This is the "HyperLoop network primitive library" of Figure 3 — storage
    applications call :meth:`gwrite`, :meth:`gcas`, :meth:`gmemcpy` and
    :meth:`gflush` (Table 1) and wait on the returned events.
    """

    _ids = itertools.count()

    def __init__(self, client_host: Host, replica_hosts: Sequence[Host],
                 config: Optional[GroupConfig] = None, name: str = ""):
        if not replica_hosts:
            raise ValueError("a group needs at least one replica")
        self.config = config or GroupConfig()
        self.name = name or f"group{next(HyperLoopGroup._ids)}"
        self.client_host = client_host
        self.sim = client_host.sim
        self.group_size = len(replica_hosts)
        self.replicas = [ReplicaEngine(host, self.name, hop, self.group_size,
                                       self.config)
                         for hop, host in enumerate(replica_hosts)]
        self.layouts = [replica.layout() for replica in self.replicas]
        self._build_client_side()
        self._wire_chain()
        for replica in self.replicas:
            replica.prepost(self.config.slots)
        self._post_ack_recvs(self.config.slots)
        self._init_op_state()
        self._start_client_processes()
        self.read_path = ClientReadPath(client_host, self.replicas, self.name)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_client_side(self) -> None:
        config, memory, nic = self.config, self.client_host.memory, \
            self.client_host.nic
        g = self.group_size
        self.region = memory.allocate(config.region_size, f"{self.name}.cregion")
        self.md_stride = meta_len(g, 0)
        self.md_buf = memory.allocate(self.md_stride * config.slots,
                                      f"{self.name}.md")
        self.ack_stride = result_map_len(g)
        self.ack_buf = memory.allocate(self.ack_stride * config.slots,
                                       f"{self.name}.ack")
        self.ack_mr = nic.register_mr(
            self.ack_buf.address, self.ack_buf.size,
            Access.LOCAL_WRITE | Access.REMOTE_WRITE, name=f"{self.name}.ackmr")
        self.out_cq = nic.create_cq(name=f"{self.name}.outcq")
        self.ack_cq = nic.create_cq(with_channel=True, name=f"{self.name}.ackcq")
        self.qp_out = nic.create_qp(self.out_cq, self.out_cq,
                                    sq_slots=4 * config.slots + 16, rq_slots=8,
                                    name=f"{self.name}.out")
        self.qp_ack = nic.create_qp(self.ack_cq, self.ack_cq, sq_slots=8,
                                    rq_slots=config.slots,
                                    name=f"{self.name}.ackqp")
        # ACK RECVs are cyclic too: posted once, re-armed by the NIC.
        self.qp_ack.rq.cyclic = True
        self.client_layout = ClientLayout(
            ack_addr=self.ack_buf.address, ack_rkey=self.ack_mr.rkey,
            ack_stride=self.ack_stride, slots=config.slots)

    def _wire_chain(self) -> None:
        self.qp_out.connect(self.replicas[0].qp_up)
        for prev, nxt in zip(self.replicas, self.replicas[1:]):
            prev.qp_down.connect(nxt.qp_up)
        self.replicas[-1].qp_down.connect(self.qp_ack)

    def _post_ack_recvs(self, count: int) -> None:
        for _ in range(count):
            self.qp_ack.post_recv(WorkRequest(Opcode.RECV, [], wr_id=0))

    def _start_client_processes(self) -> None:
        self.submit_thread = self.client_host.spawn_thread(f"{self.name}.submit")
        self.ack_thread = self.client_host.spawn_thread(f"{self.name}.ackdisp")
        if self.config.client_mode == "polling":
            self.poller = self.client_host.spawn_thread(f"{self.name}.poller")
            self.poller.run_forever()
        else:
            self.poller = None
        self.sim.process(self._submitter(), name=f"{self.name}.submitter")
        self.sim.process(self._ack_dispatcher(), name=f"{self.name}.ackdisp")

    def close(self) -> None:
        """Tear the whole group down and return every carved resource.

        Pending operations fail with a RuntimeError; the client region and
        buffers are zeroed and reusable (recovery rebuilds call this on
        the superseded group after copying its state out).
        """
        if not self._begin_close():
            return
        for replica in self.replicas:
            replica.close()
        nic, memory = self.client_host.nic, self.client_host.memory
        nic.destroy_qp(self.qp_out)
        nic.destroy_qp(self.qp_ack)
        nic.deregister_mr(self.ack_mr)
        for allocation in (self.region, self.md_buf, self.ack_buf):
            memory.free(allocation)
        self.read_path.close()

    # ------------------------------------------------------------------
    # Client processes
    # ------------------------------------------------------------------
    def _submitter(self):
        """Builds metadata and posts work requests, one op at a time.

        Runs on the client CPU — HyperLoop removes *replica* CPUs from the
        critical path; the coordinator still spends its own cycles.
        """
        sim, config = self.sim, self.config
        while True:
            op, done, slot = yield from self._dequeue()
            tracer = self.client_host.cluster.tracer
            if tracer is not None:
                tracer.emit(sim.now, f"{self.name}.client", "op.submit",
                            op.kind.value, op_slot=slot)
            build_ns = (config.meta_build_base_ns
                        + config.meta_build_per_hop_ns * self.group_size)
            yield self.submit_thread.run(build_ns)
            message = build_metadata(op, self.layouts, self.client_layout, slot)
            md_addr = self.md_buf.address + (slot % config.slots) * self.md_stride
            self.client_host.memory.write(md_addr, message)
            head = self.layouts[0]
            posts = 1
            if op.kind is OpKind.GWRITE and op.size > 0:
                self.qp_out.post_send(WorkRequest(
                    Opcode.WRITE,
                    [Sge(self.region.address + op.offset, op.size)],
                    remote_addr=head.region_addr + op.offset,
                    rkey=head.region_rkey, signaled=False))
                posts += 1
            if op.kind is OpKind.GMEMCPY:
                # The client's own copy of the region must move too.
                self.client_host.memory.copy_within(
                    self.region.address + op.src_offset,
                    self.region.address + op.dst_offset, op.size)
            if op.durable or op.kind is OpKind.GFLUSH:
                self.qp_out.post_send(WorkRequest(
                    Opcode.READ, [Sge(0, 0)], remote_addr=head.region_addr,
                    rkey=head.region_rkey, signaled=False))
                posts += 1
            self.qp_out.post_send(WorkRequest(
                Opcode.SEND, [Sge(md_addr, len(message))],
                wr_id=slot, signaled=False))
            yield self.submit_thread.run(posts * config.post_ns)
            if tracer is not None:
                tracer.emit(sim.now, f"{self.name}.client", "op.posted",
                            op.kind.value, op_slot=slot)

    def _ack_dispatcher(self):
        """Waits for tail ACKs (WRITE_WITH_IMM) and completes operations."""
        sim, config = self.sim, self.config
        channel = self.ack_cq.channel
        while True:
            self.ack_cq.req_notify()
            yield channel.wait()
            if self.poller is not None:
                # Poll mode: the completion is observed while the dedicated
                # poller owns a core; only the CQ-read cost is paid.
                yield self.poller.when_running()
                yield config.poll_overhead_ns  # bare-delay fast path
            else:
                # Event mode: the dispatcher thread must get scheduled.
                yield self.ack_thread.run(config.event_wakeup_service_ns)
            for wc in self.ack_cq.poll(64):
                if not wc.has_imm:
                    continue
                slot = wc.imm
                done = self._pop_acked(slot)
                self._release_window_waiters()
                if done is None or done.triggered:
                    continue
                ack_addr = (self.ack_buf.address
                            + (slot % config.slots) * self.ack_stride)
                result_map = self.client_host.memory.read(
                    ack_addr, self.ack_stride)
                tracer = self.client_host.cluster.tracer
                if tracer is not None:
                    tracer.emit(sim.now, f"{self.name}.client", "op.acked",
                                op_slot=slot)
                self._finish(done, slot, result_map)
