"""HyperLoop group construction and the client-side primitive API.

A HyperLoop group (Figure 3) is a chain::

    client ──▶ replica 0 ──▶ replica 1 ──▶ … ──▶ replica g-1 ──▶ client (ACK)

Every replica owns three queue pairs:

* ``qp_up``    — connected to the previous node (client for replica 0);
* ``qp_local`` — loopback, where the per-op *local* operation (NOP / CAS /
  local-copy WRITE) executes;
* ``qp_down``  — connected to the next node (the client's ACK QP for the
  tail).

For every pipeline slot ``k`` the replica's CPU pre-posts — once, off the
critical path — the chain of work requests described in §4.1/§4.2:

* ``qp_up``: a RECV whose scatter list points **at the four pre-posted WQE
  descriptors below plus the slot's staging buffer**, so the incoming
  metadata SEND patches the descriptors (including their ownership bits) by
  pure DMA;
* ``qp_local``: a consume-mode ``WAIT(up_recv_cq)`` then an unowned
  placeholder that the patch turns into the local op;
* ``qp_down``: a consume-mode ``WAIT(local_send_cq)`` then three unowned
  placeholders
  that become forward-data (WRITE), forward-flush (0-byte READ) and
  forward-metadata (SEND, or WRITE_WITH_IMM ACK at the tail).

After setup the replica CPU does nothing at all: the modified driver marks
the rings *cyclic*, so the NIC's ownership write-back re-arms each slot for
reuse and the pre-posted pattern serves unboundedly many operations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..host import Host
from ..rdma.verbs import Access
from ..rdma.wqe import WQE_SIZE, Opcode, Sge, WorkRequest
from ..sim.engine import Event
from .readpath import ClientReadPath
from .metadata import (
    ClientLayout,
    NodeLayout,
    OpKind,
    OpSpec,
    build_metadata,
    max_staging_len,
    meta_len,
    result_map_len,
    staging_len,
)

__all__ = ["GroupConfig", "ReplicaEngine", "HyperLoopGroup", "OpResult"]


@dataclass
class GroupConfig:
    """Tunables for one HyperLoop group."""

    region_size: int = 16 << 20      # Replicated region (log + db + locks).
    slots: int = 512                 # Pipeline depth S (max ops in flight).
    client_mode: str = "polling"     # "polling" | "event" ACK detection.
    meta_build_base_ns: int = 300    # Client CPU: metadata construction.
    meta_build_per_hop_ns: int = 120
    post_ns: int = 100               # Client CPU per posted work request.
    poll_overhead_ns: int = 150      # Poll-mode CQ check cost.
    event_wakeup_service_ns: int = 1000  # Event-mode post-wakeup handling.


@dataclass
class OpResult:
    """Completion record for one group operation."""

    slot: int
    latency_ns: int
    result_map: bytes

    def cas_results(self) -> List[int]:
        """Per-replica original values from a gCAS (zero where skipped)."""
        return [int.from_bytes(self.result_map[i:i + 8], "little")
                for i in range(0, len(self.result_map), 8)]


class ReplicaEngine:
    """Per-replica state: memory carve-outs, QPs, and slot pre-posting."""

    def __init__(self, host: Host, group_name: str, hop: int,
                 group_size: int, config: GroupConfig):
        self.host = host
        self.hop = hop
        self.group_size = group_size
        self.config = config
        self.name = f"{group_name}.r{hop}"
        memory, nic = host.memory, host.nic
        self.region = memory.allocate(config.region_size, f"{self.name}.region")
        stride = max_staging_len(group_size)
        self.staging = memory.allocate(stride * config.slots,
                                       f"{self.name}.staging")
        self.staging_stride = stride
        # The replicated region is remotely writable/readable and atomic-
        # capable (group locks live inside it).
        self.region_mr = nic.register_mr(
            self.region.address, self.region.size,
            Access.LOCAL_WRITE | Access.REMOTE_WRITE | Access.REMOTE_READ
            | Access.REMOTE_ATOMIC,
            name=f"{self.name}.region")
        slots = config.slots
        self.up_recv_cq = nic.create_cq(name=f"{self.name}.upcq")
        self.local_cq = nic.create_cq(name=f"{self.name}.localcq")
        self.down_cq = nic.create_cq(name=f"{self.name}.downcq")
        # Cyclic reuse requires each ring to hold *exactly* one pass of
        # the pre-posted slot pattern, so absolute slot k always maps back
        # to the same descriptor addresses.
        self.qp_up = nic.create_qp(self.down_cq, self.up_recv_cq,
                                   sq_slots=8, rq_slots=slots,
                                   name=f"{self.name}.up")
        self.qp_local = nic.create_qp(self.local_cq, self.local_cq,
                                      sq_slots=2 * slots, rq_slots=8,
                                      name=f"{self.name}.local")
        self.qp_down = nic.create_qp(self.down_cq, self.down_cq,
                                     sq_slots=4 * slots, rq_slots=8,
                                     name=f"{self.name}.down")
        self.qp_local.connect(self.qp_local)
        # Mirror the paper: the WQE rings are themselves registered memory
        # (remote manipulation is bounds-checked like any RDMA access).
        self.local_ring_mr = nic.ring_mr(self.qp_local, "sq")
        self.down_ring_mr = nic.ring_mr(self.qp_down, "sq")
        # Modified-driver cyclic rings: the slot pattern is pre-posted once
        # and re-armed by NIC ownership write-back, so the replica CPU does
        # no recurring work at all (§3.1's "very few cycles that initialize
        # the HyperLoop groups").
        self.qp_up.rq.cyclic = True
        self.qp_local.sq.cyclic = True
        self.qp_down.sq.cyclic = True
        self.posted_slots = 0

    def close(self) -> None:
        """Destroy QPs, deregister MRs, and return the carved memory."""
        nic, memory = self.host.nic, self.host.memory
        for qp in (self.qp_up, self.qp_local, self.qp_down):
            nic.destroy_qp(qp)
        for mr in (self.region_mr, self.local_ring_mr, self.down_ring_mr):
            nic.deregister_mr(mr)
        memory.free(self.region)
        memory.free(self.staging)

    def layout(self) -> NodeLayout:
        return NodeLayout(
            name=self.name,
            region_addr=self.region.address,
            region_rkey=self.region_mr.rkey,
            staging_addr=self.staging.address,
            staging_stride=self.staging_stride,
            slots=self.config.slots)

    # ------------------------------------------------------------------
    # Slot pre-posting (control plane)
    # ------------------------------------------------------------------
    def post_slot(self, slot: int) -> None:
        """Pre-post the full WQE chain for pipeline slot ``slot``.

        WAITs use consume-mode (``wait_count=0``) so the cyclic rings can
        re-serve the same descriptors forever without count patching.
        """
        placeholder = WorkRequest(Opcode.NOP, signaled=False)
        # Local queue: WAIT on the upstream RECV CQ, then the local op.
        self.qp_local.post_send(WorkRequest(
            Opcode.WAIT, wait_cq=self.up_recv_cq.cq_id, wait_count=0,
            signaled=False))
        local_idx = self.qp_local.post_send(placeholder, owned=False)
        # Down queue: WAIT on the local op's CQE, then the three forwards.
        self.qp_down.post_send(WorkRequest(
            Opcode.WAIT, wait_cq=self.local_cq.cq_id, wait_count=0,
            signaled=False))
        fd_idx = self.qp_down.post_send(placeholder, owned=False)
        ff_idx = self.qp_down.post_send(placeholder, owned=False)
        fm_idx = self.qp_down.post_send(placeholder, owned=False)
        # Upstream RECV: scatter the inbound metadata onto the four
        # descriptors above, remainder into the staging buffer.
        sg = [
            Sge(self.qp_local.sq.slot_address(local_idx), WQE_SIZE),
            Sge(self.qp_down.sq.slot_address(fd_idx), WQE_SIZE),
            Sge(self.qp_down.sq.slot_address(ff_idx), WQE_SIZE),
            Sge(self.qp_down.sq.slot_address(fm_idx), WQE_SIZE),
            Sge(self.layout().staging_slot(slot),
                staging_len(self.group_size, self.hop)),
        ]
        self.qp_up.post_recv(WorkRequest(Opcode.RECV, sg, wr_id=slot))
        self.posted_slots += 1

    def prepost(self, count: int) -> None:
        for slot in range(self.posted_slots, self.posted_slots + count):
            self.post_slot(slot)



class HyperLoopGroup:
    """Client-side handle: build the chain once, then issue group ops.

    This is the "HyperLoop network primitive library" of Figure 3 — storage
    applications call :meth:`gwrite`, :meth:`gcas`, :meth:`gmemcpy` and
    :meth:`gflush` (Table 1) and wait on the returned events.
    """

    _ids = itertools.count()

    def __init__(self, client_host: Host, replica_hosts: Sequence[Host],
                 config: Optional[GroupConfig] = None, name: str = ""):
        if not replica_hosts:
            raise ValueError("a group needs at least one replica")
        self.config = config or GroupConfig()
        self.name = name or f"group{next(HyperLoopGroup._ids)}"
        self.client_host = client_host
        self.sim = client_host.sim
        self.group_size = len(replica_hosts)
        self.replicas = [ReplicaEngine(host, self.name, hop, self.group_size,
                                       self.config)
                         for hop, host in enumerate(replica_hosts)]
        self.layouts = [replica.layout() for replica in self.replicas]
        self._build_client_side()
        self._wire_chain()
        for replica in self.replicas:
            replica.prepost(self.config.slots)
        self._post_ack_recvs(self.config.slots)
        self._next_slot = 0
        self._acked = 0
        self._ack_events: Dict[int, Event] = {}
        self._window_waiters: List[Event] = []
        self._submit_queue: List = []
        self._submit_kick: Optional[Event] = None
        self._start_client_processes()
        self.read_path = ClientReadPath(client_host, self.replicas, self.name)

    def remote_read(self, hop: int, offset: int, size: int) -> Event:
        """One-sided READ of ``region[offset:offset+size]`` on replica ``hop``."""
        self._check_range(offset, size)
        return self.read_path.read(hop, offset, size)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_client_side(self) -> None:
        config, memory, nic = self.config, self.client_host.memory, \
            self.client_host.nic
        g = self.group_size
        self.region = memory.allocate(config.region_size, f"{self.name}.cregion")
        self.md_stride = meta_len(g, 0)
        self.md_buf = memory.allocate(self.md_stride * config.slots,
                                      f"{self.name}.md")
        self.ack_stride = result_map_len(g)
        self.ack_buf = memory.allocate(self.ack_stride * config.slots,
                                       f"{self.name}.ack")
        self.ack_mr = nic.register_mr(
            self.ack_buf.address, self.ack_buf.size,
            Access.LOCAL_WRITE | Access.REMOTE_WRITE, name=f"{self.name}.ackmr")
        self.out_cq = nic.create_cq(name=f"{self.name}.outcq")
        self.ack_cq = nic.create_cq(with_channel=True, name=f"{self.name}.ackcq")
        self.qp_out = nic.create_qp(self.out_cq, self.out_cq,
                                    sq_slots=4 * config.slots + 16, rq_slots=8,
                                    name=f"{self.name}.out")
        self.qp_ack = nic.create_qp(self.ack_cq, self.ack_cq, sq_slots=8,
                                    rq_slots=config.slots,
                                    name=f"{self.name}.ackqp")
        # ACK RECVs are cyclic too: posted once, re-armed by the NIC.
        self.qp_ack.rq.cyclic = True
        self.client_layout = ClientLayout(
            ack_addr=self.ack_buf.address, ack_rkey=self.ack_mr.rkey,
            ack_stride=self.ack_stride, slots=config.slots)

    def _wire_chain(self) -> None:
        self.qp_out.connect(self.replicas[0].qp_up)
        for prev, nxt in zip(self.replicas, self.replicas[1:]):
            prev.qp_down.connect(nxt.qp_up)
        self.replicas[-1].qp_down.connect(self.qp_ack)

    def _post_ack_recvs(self, count: int) -> None:
        for _ in range(count):
            self.qp_ack.post_recv(WorkRequest(Opcode.RECV, [], wr_id=0))

    def _start_client_processes(self) -> None:
        self.submit_thread = self.client_host.spawn_thread(f"{self.name}.submit")
        self.ack_thread = self.client_host.spawn_thread(f"{self.name}.ackdisp")
        if self.config.client_mode == "polling":
            self.poller = self.client_host.spawn_thread(f"{self.name}.poller")
            self.poller.run_forever()
        else:
            self.poller = None
        self.sim.process(self._submitter(), name=f"{self.name}.submitter")
        self.sim.process(self._ack_dispatcher(), name=f"{self.name}.ackdisp")

    # ------------------------------------------------------------------
    # Public API (Table 1)
    # ------------------------------------------------------------------
    def gwrite(self, offset: int, size: int, durable: bool = False) -> Event:
        """Replicate ``region[offset:offset+size]`` to every replica.

        The caller must already have written the payload into the client's
        own region.  Returns an event whose value is an :class:`OpResult`.
        """
        self._check_range(offset, size)
        return self.submit(OpSpec(OpKind.GWRITE, offset=offset, size=size,
                                  durable=durable))

    def gcas(self, offset: int, old_value: int, new_value: int,
             execute_map: Optional[Sequence[bool]] = None,
             durable: bool = False) -> Event:
        """Group compare-and-swap on an 8-byte word at ``offset``."""
        self._check_range(offset, 8)
        return self.submit(OpSpec(OpKind.GCAS, offset=offset,
                                  old_value=old_value, new_value=new_value,
                                  execute_map=execute_map, durable=durable))

    def gmemcpy(self, src_offset: int, dst_offset: int, size: int,
                durable: bool = False) -> Event:
        """Copy ``size`` bytes from ``src_offset`` to ``dst_offset`` on all
        nodes (including the client's own region, done in software here)."""
        self._check_range(src_offset, size)
        self._check_range(dst_offset, size)
        return self.submit(OpSpec(OpKind.GMEMCPY, src_offset=src_offset,
                                  dst_offset=dst_offset, size=size,
                                  durable=durable))

    def gflush(self) -> Event:
        """Flush every replica's NIC cache to NVM, in chain order."""
        return self.submit(OpSpec(OpKind.GFLUSH, durable=True))

    def submit(self, op: OpSpec) -> Event:
        """Queue an operation; the event fires with its :class:`OpResult`."""
        done = self.sim.event()
        # Latency is measured from submission, so client-side queueing and
        # metadata construction are included — as a caller would see it.
        done.issue_time = self.sim.now  # type: ignore[attr-defined]
        self._submit_queue.append((op, done, self.sim.now))
        if self._submit_kick is not None and not self._submit_kick.triggered:
            self._submit_kick.succeed()
        return done

    # Convenience accessors for applications sharing the region layout.
    def write_local(self, offset: int, data: bytes) -> None:
        """Software store into the client's own copy of the region."""
        self._check_range(offset, len(data))
        self.client_host.memory.write(self.region.address + offset, data)

    def read_local(self, offset: int, size: int) -> bytes:
        self._check_range(offset, size)
        return self.client_host.memory.read(self.region.address + offset, size)

    def read_replica(self, hop: int, offset: int, size: int) -> bytes:
        """Direct read of a replica's region (test/verification helper)."""
        replica = self.replicas[hop]
        return replica.host.memory.read(replica.region.address + offset, size)

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0 or offset + size > self.config.region_size:
            raise ValueError(
                f"[{offset}, {offset + size}) outside region of "
                f"{self.config.region_size} bytes")

    @property
    def in_flight(self) -> int:
        return self._next_slot - self._acked

    def close(self) -> None:
        """Tear the whole group down and return every carved resource.

        Pending operations fail with a RuntimeError; the client region and
        buffers are zeroed and reusable (recovery rebuilds call this on
        the superseded group after copying its state out).
        """
        if getattr(self, "_closed", False):
            return
        self._closed = True
        self.abort_in_flight(RuntimeError(f"{self.name} closed"))
        for replica in self.replicas:
            replica.close()
        nic, memory = self.client_host.nic, self.client_host.memory
        nic.destroy_qp(self.qp_out)
        nic.destroy_qp(self.qp_ack)
        nic.deregister_mr(self.ack_mr)
        for allocation in (self.region, self.md_buf, self.ack_buf):
            memory.free(allocation)
        self.read_path.close()

    def abort_in_flight(self, reason: Exception) -> int:
        """Fail every unacknowledged operation (chain failure detected).

        Returns the number of operations aborted.  Queued-but-unsubmitted
        operations are failed too.
        """
        aborted = 0
        for event in list(self._ack_events.values()):
            if not event.triggered:
                event.fail(reason)
                aborted += 1
        self._ack_events.clear()
        for op_tuple in self._submit_queue:
            done = op_tuple[1]
            if not done.triggered:
                done.fail(reason)
                aborted += 1
        self._submit_queue.clear()
        self._acked = self._next_slot
        return aborted

    # ------------------------------------------------------------------
    # Client processes
    # ------------------------------------------------------------------
    def _submitter(self):
        """Builds metadata and posts work requests, one op at a time.

        Runs on the client CPU — HyperLoop removes *replica* CPUs from the
        critical path; the coordinator still spends its own cycles.
        """
        sim, config = self.sim, self.config
        while True:
            if not self._submit_queue:
                self._submit_kick = sim.event()
                yield self._submit_kick
                continue
            op, done, enqueued_at = self._submit_queue.pop(0)
            # Flow control: never exceed the pipeline depth.
            while self.in_flight >= config.slots:
                waiter = sim.event()
                self._window_waiters.append(waiter)
                yield waiter
            slot = self._next_slot
            self._next_slot += 1
            self._ack_events[slot] = done
            tracer = self.client_host.cluster.tracer
            if tracer is not None:
                tracer.emit(sim.now, f"{self.name}.client", "op.submit",
                            op.kind.value, op_slot=slot)
            build_ns = (config.meta_build_base_ns
                        + config.meta_build_per_hop_ns * self.group_size)
            yield self.submit_thread.run(build_ns)
            message = build_metadata(op, self.layouts, self.client_layout, slot)
            md_addr = self.md_buf.address + (slot % config.slots) * self.md_stride
            self.client_host.memory.write(md_addr, message)
            head = self.layouts[0]
            posts = 1
            if op.kind is OpKind.GWRITE and op.size > 0:
                self.qp_out.post_send(WorkRequest(
                    Opcode.WRITE,
                    [Sge(self.region.address + op.offset, op.size)],
                    remote_addr=head.region_addr + op.offset,
                    rkey=head.region_rkey, signaled=False))
                posts += 1
            if op.kind is OpKind.GMEMCPY:
                # The client's own copy of the region must move too.
                self.client_host.memory.copy_within(
                    self.region.address + op.src_offset,
                    self.region.address + op.dst_offset, op.size)
            if op.durable or op.kind is OpKind.GFLUSH:
                self.qp_out.post_send(WorkRequest(
                    Opcode.READ, [Sge(0, 0)], remote_addr=head.region_addr,
                    rkey=head.region_rkey, signaled=False))
                posts += 1
            self.qp_out.post_send(WorkRequest(
                Opcode.SEND, [Sge(md_addr, len(message))],
                wr_id=slot, signaled=False))
            yield self.submit_thread.run(posts * config.post_ns)
            if tracer is not None:
                tracer.emit(sim.now, f"{self.name}.client", "op.posted",
                            op.kind.value, op_slot=slot)

    def _ack_dispatcher(self):
        """Waits for tail ACKs (WRITE_WITH_IMM) and completes operations."""
        sim, config = self.sim, self.config
        channel = self.ack_cq.channel
        while True:
            self.ack_cq.req_notify()
            yield channel.wait()
            if self.poller is not None:
                # Poll mode: the completion is observed while the dedicated
                # poller owns a core; only the CQ-read cost is paid.
                yield self.poller.when_running()
                yield sim.timeout(config.poll_overhead_ns)
            else:
                # Event mode: the dispatcher thread must get scheduled.
                yield self.ack_thread.run(config.event_wakeup_service_ns)
            for wc in self.ack_cq.poll(64):
                if not wc.has_imm:
                    continue
                slot = wc.imm
                done = self._ack_events.pop(slot, None)
                self._acked += 1
                if self._window_waiters:
                    waiters, self._window_waiters = self._window_waiters, []
                    for waiter in waiters:
                        waiter.succeed()
                if done is None or done.triggered:
                    continue
                ack_addr = (self.ack_buf.address
                            + (slot % config.slots) * self.ack_stride)
                result_map = self.client_host.memory.read(
                    ack_addr, self.ack_stride)
                issue = getattr(done, "issue_time", sim.now)
                tracer = self.client_host.cluster.tracer
                if tracer is not None:
                    tracer.emit(sim.now, f"{self.name}.client", "op.acked",
                                op_slot=slot)
                done.succeed(OpResult(slot=slot,
                                      latency_ns=sim.now - issue,
                                      result_map=result_map))
