"""The HyperLoop storage API (§5).

This is the layer the paper's case studies program against:

* ``Initialize`` — set up the replicated region (lock table + write-ahead
  log + database area) over a group: any
  :class:`~repro.backend.api.ReplicationBackend` implementation (see
  ``repro.backend.names()``) — the case-study applications are
  backend-agnostic, exactly as the paper's APIs are.
* ``Append(log_record)`` — replicate a redo record to every replica's WAL,
  durably, "implemented using gWRITE and gFLUSH operations".
* ``ExecuteAndAdvance`` — process the record at the WAL head: one
  gMEMCPY + gFLUSH per entry to move payloads from the log into the
  database area, then a gWRITE + gFLUSH advancing the head pointer
  (log truncation).
* ``wrLock/wrUnlock`` and ``rdLock/rdUnlock`` — group locking via gCAS
  (delegated to :class:`~repro.storage.locktable.GroupLockTable`).

All mutating methods are simulation generators; drive them with
``yield from`` (or wrap in ``sim.process``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.engine import Event
from ..storage.layout import RegionLayout
from ..storage.locktable import GroupLockTable
from ..storage.wal import (
    ENTRY_DESC_SIZE,
    HEADER_SIZE,
    LogEntry,
    LogRecord,
    RecordKind,
    WalFullError,
    WalRing,
)

__all__ = ["StoreConfig", "ReplicatedStore", "initialize", "recover"]


@dataclass
class StoreConfig:
    """Configuration for :func:`initialize` (the paper's config object)."""

    num_locks: int = 1024
    wal_size: int = 4 << 20
    durable: bool = True       # Interleave gFLUSH on the data path.


def initialize(group, config: Optional[StoreConfig] = None) -> "ReplicatedStore":
    """Create a replicated store over an existing group (§5 ``Initialize``).

    The group carries the region size and connections; this function lays
    out locks/WAL/database inside it and returns the store handle.
    """
    return ReplicatedStore(group, config or StoreConfig())


def recover(group, config: Optional[StoreConfig] = None,
            source_hop: int = 0,
            decisions: Optional[Dict[int, "RecordKind"]] = None):
    """Rebuild a store after the *coordinator* crashed (generator).

    §5.1's recovery direction, applied to the client side: a restarted
    coordinator holds no state, but every replica's NVM does.  This pulls
    the surviving region image from ``source_hop`` via one-sided READs
    (no replica CPU), reseats the client's local copy, re-derives the next
    sequence number by scanning the WAL (CRC rejects any torn tail
    record), re-registers known 2PC ``decisions`` (from the coordinator's
    durable decision log), and returns a working :class:`ReplicatedStore`.

    In-doubt PREPARE records — transactions with no recorded decision —
    stay pinned at the WAL head until :meth:`ReplicatedStore.
    register_decision` resolves them, exactly as before the crash.
    """
    store = ReplicatedStore(group, config or StoreConfig())
    # Stream the authoritative replica image into the client's copy.
    chunk = 32 * 1024
    region_size = group.config.region_size
    offset = 0
    while offset < region_size:
        span = min(chunk, region_size - offset)
        data = yield group.remote_read(source_hop, offset, span)
        group.write_local(offset, data)
        offset += span
    records = store.ring.scan()
    store._next_seq = store.ring.last_seq + 1
    store.appended_records = len(records)
    for txn_id, decision in (decisions or {}).items():
        store.register_decision(txn_id, decision)
    return store


class ReplicatedStore:
    """A replicated, transactional region: WAL + database + group locks."""

    def __init__(self, group, config: StoreConfig):
        self.group = group
        self.config = config
        self.sim = group.sim
        self.layout = RegionLayout(region_size=group.config.region_size,
                                   num_locks=config.num_locks,
                                   wal_size=config.wal_size)
        self.ring = WalRing(self.layout.wal_offset, self.layout.wal_size,
                            read=group.read_local, write=group.write_local)
        rng = group.client_host.cluster.rng.stream(f"{group.name}.locks")
        self.locks = GroupLockTable(group, self.layout, rng)
        self._next_seq = 1
        self.appended_records = 0
        self.executed_records = 0
        # Two-phase-commit state: decisions fed by the coordinator, and
        # prepared records awaiting one.
        self._txn_decisions: Dict[int, RecordKind] = {}

    # ------------------------------------------------------------------
    # Log replication (§5 "Log Replication")
    # ------------------------------------------------------------------
    def append(self, entries: Sequence[LogEntry],
               kind: RecordKind = RecordKind.DATA, txn_id: int = 0):
        """Append one redo record and replicate it durably to all WALs.

        Generator; returns the :class:`LogRecord` written.  Raises
        :class:`WalFullError` when the ring needs truncation first (call
        :meth:`execute_and_advance`).
        """
        record = LogRecord(seq=self._next_seq, entries=tuple(entries),
                           kind=kind, txn_id=txn_id)
        data = record.encode()
        region_offset, new_tail, wrapped = self.ring.place(len(data))
        group = self.group
        acks: List[Event] = []
        if wrapped:
            self.ring.write_wrap_marker(self.ring.tail)
            marker_offset = self.ring.ring_offset + self.ring.tail
            acks.append(group.gwrite(marker_offset, 4,
                                     durable=self.config.durable))
        group.write_local(region_offset, data)
        acks.append(group.gwrite(region_offset, len(data),
                                 durable=self.config.durable))
        # The tail pointer (and the monotonic sequence high-water mark,
        # adjacent to it) only move after the record bytes are durable
        # everywhere; chain FIFO ordering makes the second gWRITE arrive
        # after the first at every hop.
        self.ring.write_tail(new_tail)
        self.ring.write_last_seq(record.seq)
        acks.append(group.gwrite(self.ring.tail_pointer_offset, 16,
                                 durable=self.config.durable))
        self._next_seq += 1
        self.appended_records += 1
        for ack in acks:
            yield ack
        return record

    def append_blocking_truncate(self, entries: Sequence[LogEntry]):
        """Like :meth:`append` but truncates (executes) when the ring fills."""
        while True:
            try:
                record = yield from self.append(entries)
                return record
            except WalFullError:
                executed = yield from self.execute_and_advance()
                if executed is None:
                    raise

    # ------------------------------------------------------------------
    # Log processing (§5 "Log Processing")
    # ------------------------------------------------------------------
    def register_decision(self, txn_id: int, decision: RecordKind) -> None:
        """Record a 2PC outcome so a pending PREPARE can be resolved."""
        if decision not in (RecordKind.COMMIT, RecordKind.ABORT):
            raise ValueError(f"decision must be COMMIT or ABORT, "
                             f"got {decision}")
        self._txn_decisions[txn_id] = decision

    def execute_and_advance(self):
        """Process the record at the WAL head on *all* replicas.

        For each (data, len, offset) entry, a gMEMCPY copies the payload
        from the log area into the database area — on every node, with no
        replica CPU — followed (when durable) by the interleaved flush.
        Finally the head pointer advances: log truncation.

        Two-phase-commit handling: a PREPARE record applies only once its
        transaction's decision is COMMIT; with an ABORT decision it is
        skipped; with no decision yet the head cannot advance and the
        method returns None (in-doubt transactions pin the log, exactly as
        in real write-ahead logging).

        Generator; returns the processed :class:`LogRecord`, or None when
        the log is empty or blocked on an in-doubt transaction.
        """
        head, tail = self.ring.head, self.ring.tail
        if head == tail:
            return None
        record, region_offset, next_pos = self.ring.record_at(head)
        apply_entries = record.kind is RecordKind.DATA
        if record.kind is RecordKind.PREPARE:
            decision = self._txn_decisions.get(record.txn_id)
            if decision is None:
                return None  # In-doubt: the log cannot truncate past it.
            apply_entries = decision is RecordKind.COMMIT
        group = self.group
        acks: List[Event] = []
        if apply_entries:
            payload_cursor = (region_offset + HEADER_SIZE
                              + ENTRY_DESC_SIZE * len(record.entries))
            for entry in record.entries:
                dst = self.layout.db_address(entry.db_offset, entry.length)
                acks.append(group.gmemcpy(payload_cursor, dst, entry.length,
                                          durable=self.config.durable))
                payload_cursor += entry.length
        self.ring.write_head(next_pos)
        acks.append(group.gwrite(self.ring.head_pointer_offset, 8,
                                 durable=self.config.durable))
        self.executed_records += 1
        for ack in acks:
            yield ack
        return record

    def drain(self):
        """Execute every outstanding record (used before reads/recovery)."""
        processed = []
        while True:
            record = yield from self.execute_and_advance()
            if record is None:
                return processed
            processed.append(record)

    # ------------------------------------------------------------------
    # Locking (§5 "Locking and Isolation")
    # ------------------------------------------------------------------
    def wr_lock(self, lock_id: int):
        yield from self.locks.wr_lock(lock_id)

    def wr_unlock(self, lock_id: int):
        yield from self.locks.wr_unlock(lock_id)

    def rd_lock(self, lock_id: int, hop: int):
        yield from self.locks.rd_lock(lock_id, hop)

    def rd_unlock(self, lock_id: int, hop: int):
        yield from self.locks.rd_unlock(lock_id, hop)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def db_read_local(self, db_offset: int, size: int) -> bytes:
        """Read the client's own copy of the database area (no network)."""
        return self.group.read_local(self.layout.db_address(db_offset, size),
                                     size)

    def db_read(self, hop: int, db_offset: int, size: int) -> Event:
        """One-sided read of the database area on replica ``hop``."""
        return self.group.remote_read(
            hop, self.layout.db_address(db_offset, size), size)

    def db_write_local(self, db_offset: int, data: bytes) -> None:
        """Software store into the client's database copy.

        Replication of database contents normally flows through the WAL
        (append + execute); this direct store exists for initialization.
        """
        self.group.write_local(self.layout.db_address(db_offset, len(data)),
                               data)

    # ------------------------------------------------------------------
    # Transactions: the §3.1 five-step recipe in one call
    # ------------------------------------------------------------------
    def transaction(self, lock_id: int, entries: Sequence[LogEntry],
                    execute: bool = True):
        """Run one replicated ACID transaction:

        1. replicate the redo record to all WALs (Append),
        2. acquire the group write lock,
        3. execute the record (gMEMCPY per entry),
        4. durably flush (interleaved gFLUSH),
        5. release the lock.

        Generator; returns the :class:`LogRecord`.
        """
        record = yield from self.append_blocking_truncate(entries)
        yield from self.wr_lock(lock_id)
        try:
            if execute:
                yield from self.execute_and_advance()
        finally:
            yield from self.wr_unlock(lock_id)
        return record
