"""Failure detection and chain repair (§5, RocksDB/MongoDB recovery).

HyperLoop deliberately keeps the control path conventional: "a configurable
number of consecutive missing heartbeats is considered a data path failure",
after which the application-level recovery protocol rebuilds the chain while
the accelerated data path is down.  This module provides that control path:

* every replica runs a heartbeat sender — a real SEND over a dedicated QP,
  whose CPU cost is charged to the replica's (possibly overloaded) host, so
  false positives under extreme load are possible, as in real deployments;
* the client runs a monitor that declares a replica failed after
  ``miss_threshold`` consecutive missing heartbeats;
* :meth:`ChainSupervisor.repair` rebuilds the group over the surviving
  replicas plus an optional replacement, pausing writes during catch-up and
  copying the authoritative client region to every member ("a new member in
  the chain copies the log and the database … writes are paused for a short
  duration of catch-up phase", §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..host import Host
from ..rdma.wqe import Opcode, WorkRequest
from ..sim.units import gbps_to_bytes_per_ns, ms

__all__ = ["ChainFailure", "RecoveryConfig", "ChainSupervisor"]


class ChainFailure(Exception):
    """Raised into pending operations when the chain is declared failed."""

    def __init__(self, hop: int, host_name: str):
        super().__init__(f"replica {hop} ({host_name}) failed")
        self.hop = hop
        self.host_name = host_name


@dataclass
class RecoveryConfig:
    heartbeat_period_ns: int = ms(5)
    miss_threshold: int = 3
    heartbeat_cpu_ns: int = 2_000
    catchup_bandwidth_gbps: float = 40.0    # Bulk state-copy rate.
    catchup_cpu_ns: int = 200_000           # Per-member control-plane work.


class ChainSupervisor:
    """Owns a group's lifecycle: build, monitor, detect, repair.

    ``make_group`` is any callable ``(client_host, replica_hosts) -> group``
    so the same supervisor drives HyperLoop and Naïve-RDMA chains.
    """

    def __init__(self, client_host: Host, replica_hosts: List[Host],
                 make_group: Callable, config: Optional[RecoveryConfig] = None):
        self.client_host = client_host
        self.replica_hosts = list(replica_hosts)
        self.make_group = make_group
        self.config = config or RecoveryConfig()
        self.sim = client_host.sim
        self.group = make_group(client_host, self.replica_hosts)
        self.healthy = True
        self.failed_host: Optional[Host] = None
        self.failures_detected = 0
        self.repairs_completed = 0
        self._on_failure: List[Callable[[int, Host], None]] = []
        self._last_beat: Dict[str, int] = {}
        self._hb_index: List[Host] = []
        self._monitoring = False

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------
    def on_failure(self, callback: Callable[[int, Host], None]) -> None:
        """Register a callback invoked once per detected failure."""
        self._on_failure.append(callback)

    def start_monitoring(self) -> None:
        if self._monitoring:
            return
        self._monitoring = True
        nic = self.client_host.nic
        self._hb_cq = nic.create_cq(name="hb.ccq")
        self._hb_qps: List = []
        for host in self.replica_hosts:
            self._add_heartbeat_target(host)
        self.sim.process(self._collector(), name="hb.collector")
        self.sim.process(self._monitor(), name="hb.monitor")

    def _add_heartbeat_target(self, host: Host) -> None:
        index = len(self._hb_index)
        self._hb_index.append(host)
        nic = self.client_host.nic
        local = nic.create_qp(self._hb_cq, self._hb_cq, sq_slots=8,
                              rq_slots=256, name=f"hb.c{index}")
        remote_cq = host.nic.create_cq(name=f"hb.rcq.{host.name}")
        remote = host.nic.create_qp(remote_cq, remote_cq, sq_slots=64,
                                    rq_slots=8, name=f"hb.r.{host.name}")
        local.connect(remote)
        self._hb_qps.append(local)
        self._last_beat[host.name] = self.sim.now
        for _ in range(256):
            local.post_recv(WorkRequest(Opcode.RECV, [], wr_id=index))
        self.sim.process(self._heartbeat_sender(host, remote),
                         name=f"hb.sender.{host.name}")

    def _heartbeat_sender(self, host: Host, qp):
        """Replica-side heartbeat loop: real CPU, real SEND."""
        config = self.config
        thread = host.spawn_thread(f"hb.{host.name}")
        while True:
            yield self.sim.timeout(config.heartbeat_period_ns)
            if host.crashed:
                return
            yield thread.run(config.heartbeat_cpu_ns)
            if host.crashed:
                return
            qp.post_send(WorkRequest(Opcode.SEND, [], signaled=False))

    def _collector(self):
        """Client-side: record arrival times of heartbeats."""
        while True:
            completions = self._hb_cq.poll(64)
            if not completions:
                check = self.sim.event()
                self.sim.call_at(
                    self.sim.now + self.config.heartbeat_period_ns // 2,
                    lambda: None if check.triggered else check.succeed())
                yield check
                continue
            for wc in completions:
                host = self._hb_index[wc.wr_id]
                self._last_beat[host.name] = self.sim.now
                self._hb_qps[wc.wr_id].post_recv(
                    WorkRequest(Opcode.RECV, [], wr_id=wc.wr_id))

    def _monitor(self):
        """Declare failure after miss_threshold silent periods."""
        config = self.config
        deadline = config.heartbeat_period_ns * (config.miss_threshold + 1)
        while True:
            yield self.sim.timeout(config.heartbeat_period_ns)
            if not self.healthy:
                continue
            for host in self.replica_hosts:
                last = self._last_beat.get(host.name)
                if last is not None and self.sim.now - last > deadline:
                    self._declare_failure(host)
                    break

    def _declare_failure(self, host: Host) -> None:
        self.healthy = False
        self.failed_host = host
        self.failures_detected += 1
        hop = self.replica_hosts.index(host)
        self.group.abort_in_flight(ChainFailure(hop, host.name))
        for callback in self._on_failure:
            callback(hop, host)

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def repair(self, replacement: Optional[Host] = None):
        """Rebuild the chain; generator, returns the new group.

        The failed replica is dropped (or swapped for ``replacement``); the
        client's region — authoritative, since every ACKed op reached it —
        is bulk-copied to every member of the new chain, with copy time
        charged at the catch-up bandwidth.  The old group's pending state is
        already aborted; callers retry failed operations afterwards.
        """
        if self.healthy:
            raise RuntimeError("repair() called on a healthy chain")
        failed = self.failed_host
        survivors = [host for host in self.replica_hosts if host is not failed]
        if replacement is not None:
            survivors.append(replacement)
        if not survivors:
            raise RuntimeError("no replicas left to rebuild from")
        old_group = self.group
        new_group = self.make_group(self.client_host, survivors)
        # Preserve the client's authoritative region contents.
        state = self.client_host.memory.read(old_group.region.address,
                                             old_group.region.size)
        self.client_host.memory.write(new_group.region.address, state)
        # Catch-up: stream the region to every member.
        copy_ns = int(len(state) / gbps_to_bytes_per_ns(
            self.config.catchup_bandwidth_gbps))
        for replica in new_group.replicas:
            yield self.sim.timeout(self.config.catchup_cpu_ns)
            yield self.sim.timeout(copy_ns)
            replica.host.memory.write(replica.region.address, state)
            replica.host.memory.persist(replica.region.address, len(state))
        if self._monitoring and replacement is not None \
                and replacement.name not in self._last_beat:
            self._add_heartbeat_target(replacement)
        self._last_beat.pop(failed.name, None)
        self.replica_hosts = survivors
        self.group = new_group
        self.healthy = True
        self.failed_host = None
        self.repairs_completed += 1
        # Return the superseded group's memory and queues (its state was
        # already copied out above).
        if hasattr(old_group, "close"):
            old_group.close()
        return new_group
