"""Multi-client chains via shared receive queues (§5's future work).

The paper's case-study client is "a single multi-threaded process", with a
pointer to the generalization: "Multiple clients can be supported in the
future using shared receive queues on the first replica in the chain."
This module builds that design:

* the head replica's upstream RECVs live in an **SRQ**; each client gets
  its own QP into it, and the shared FIFO assigns arriving operations to
  pre-posted slots in arrival order — no coordination between clients;
* because a client cannot know which global slot its op will take, the
  patch entries carry only **slot-independent** descriptor images (local
  op, forward-data, forward-flush; 3 × WQE per hop), while the
  forward-metadata SENDs and the tail ACK are **pre-posted statically**
  with per-slot staging addresses;
* ACK routing without per-client tail QPs: the client appends a 16-byte
  ``(client_id, client_op)`` tag to its metadata; the scatter leaves it in
  the tail's staging slot, and the static tail ACK (WRITE_WITH_IMM, imm =
  global slot) carries exactly those bytes to the **owner host's** ACK
  buffer, whose dispatcher wakes the right client;
* per-client flow control: each client's in-flight window is
  ``slots // max_clients``, so the shared pipeline can never overrun.

Scope: gWRITE, gMEMCPY and gFLUSH.  gCAS is single-client by design here —
its result map needs slot-relative scatter addresses that a multi-client
submitter cannot compute (use a per-client group, or route locks through
one lock-owner client).

Replica CPUs still do exactly zero data-path work.
"""

from __future__ import annotations

import itertools
import struct
from collections import deque
from typing import Dict, List, Optional, Sequence

from ..host import Host
from ..rdma.verbs import Access
from ..rdma.wqe import WQE_SIZE, Opcode, Sge, WorkRequest, encode_wqe
from ..sim.engine import Event
from .group import GroupConfig, OpResult
from .metadata import OpKind, OpSpec

__all__ = ["SharedChain", "SharedChainClient"]

_ENTRY_WQES = 3
_ENTRY_SIZE = _ENTRY_WQES * WQE_SIZE
_TAG = struct.Struct("<II")  # client_id u32, client_op u32
TAG_SIZE = 16                # Padded for alignment.


def _meta_len(group_size: int, hop: int) -> int:
    return (group_size - hop) * _ENTRY_SIZE + TAG_SIZE


class _SharedReplica:
    """One replica of a shared chain: slot machine with static forwards."""

    def __init__(self, host: Host, chain: "SharedChain", hop: int):
        self.host = host
        self.chain = chain
        self.hop = hop
        config = chain.config
        memory, nic = host.memory, host.nic
        self.name = f"{chain.name}.r{hop}"
        self.region = memory.allocate(config.region_size, f"{self.name}.region")
        self.region_mr = nic.register_mr(
            self.region.address, self.region.size,
            Access.LOCAL_WRITE | Access.REMOTE_WRITE | Access.REMOTE_READ
            | Access.REMOTE_ATOMIC, name=f"{self.name}.region")
        self.is_tail = hop == chain.group_size - 1
        self.staging_stride = max(
            TAG_SIZE, _meta_len(chain.group_size, hop + 1)
            if not self.is_tail else TAG_SIZE)
        self.staging = memory.allocate(self.staging_stride * config.slots,
                                       f"{self.name}.staging")
        self.up_cq = nic.create_cq(name=f"{self.name}.upcq")
        self.local_cq = nic.create_cq(name=f"{self.name}.localcq")
        self.down_cq = nic.create_cq(name=f"{self.name}.downcq")
        if hop == 0:
            # The head consumes client SENDs from a shared receive queue.
            self.srq = nic.create_srq(slots=config.slots,
                                      name=f"{self.name}.srq")
            self.srq.cyclic = True
            self.qp_up = None
        else:
            self.srq = None
            self.qp_up = nic.create_qp(self.down_cq, self.up_cq, sq_slots=8,
                                       rq_slots=config.slots,
                                       name=f"{self.name}.up")
            self.qp_up.rq.cyclic = True
        self.qp_local = nic.create_qp(self.local_cq, self.local_cq,
                                      sq_slots=2 * config.slots, rq_slots=8,
                                      name=f"{self.name}.local")
        self.qp_local.connect(self.qp_local)
        self.qp_local.sq.cyclic = True
        self.qp_down = nic.create_qp(self.down_cq, self.down_cq,
                                     sq_slots=4 * config.slots, rq_slots=8,
                                     name=f"{self.name}.down")
        self.qp_down.sq.cyclic = True

    def staging_slot(self, slot: int) -> int:
        return self.staging.address \
            + (slot % self.chain.config.slots) * self.staging_stride

    def receive_queue(self):
        return self.srq if self.srq is not None else self.qp_up.rq

    def post_slot(self, slot: int) -> None:
        chain = self.chain
        placeholder = WorkRequest(Opcode.NOP, signaled=False)
        self.qp_local.post_send(WorkRequest(
            Opcode.WAIT, wait_cq=self.up_cq.cq_id, wait_count=0,
            signaled=False))
        local_idx = self.qp_local.post_send(placeholder, owned=False)
        self.qp_down.post_send(WorkRequest(
            Opcode.WAIT, wait_cq=self.local_cq.cq_id, wait_count=0,
            signaled=False))
        fd_idx = self.qp_down.post_send(placeholder, owned=False)
        ff_idx = self.qp_down.post_send(placeholder, owned=False)
        # The metadata forward / tail ACK is STATIC: fully pre-posted and
        # owned, so it needs nothing from the (slot-oblivious) client.
        if self.is_tail:
            self.qp_down.post_send(WorkRequest(
                Opcode.WRITE_WITH_IMM,
                [Sge(self.staging_slot(slot), TAG_SIZE)],
                remote_addr=chain.ack_slot_addr(slot),
                rkey=chain.ack_mr.rkey,
                imm=slot % chain.config.slots, signaled=False,
                static=True))
        else:
            self.qp_down.post_send(WorkRequest(
                Opcode.SEND,
                [Sge(self.staging_slot(slot),
                     _meta_len(chain.group_size, self.hop + 1))],
                signaled=False, static=True))
        receive_queue = self.receive_queue()
        receive_queue.post(WorkRequest(Opcode.RECV, [
            Sge(self.qp_local.sq.slot_address(local_idx), WQE_SIZE),
            Sge(self.qp_down.sq.slot_address(fd_idx), WQE_SIZE),
            Sge(self.qp_down.sq.slot_address(ff_idx), WQE_SIZE),
            Sge(self.staging_slot(slot),
                _meta_len(chain.group_size, self.hop) - _ENTRY_SIZE),
        ], wr_id=slot))

    def prepost(self, count: int) -> None:
        for slot in range(count):
            self.post_slot(slot)


class SharedChain:
    """One replication chain shared by several independent clients."""

    _ids = itertools.count()

    def __init__(self, owner_host: Host, replica_hosts: Sequence[Host],
                 config: Optional[GroupConfig] = None, name: str = "",
                 max_clients: int = 8):
        if not replica_hosts:
            raise ValueError("a chain needs at least one replica")
        if max_clients < 1:
            raise ValueError("max_clients must be positive")
        self.config = config or GroupConfig()
        if self.config.slots < max_clients:
            raise ValueError("need at least one slot per client")
        self.name = name or f"shared{next(SharedChain._ids)}"
        self.owner_host = owner_host
        self.sim = owner_host.sim
        self.group_size = len(replica_hosts)
        self.max_clients = max_clients
        self.replicas = [_SharedReplica(host, self, hop)
                         for hop, host in enumerate(replica_hosts)]
        self._build_owner_side()
        self._wire_chain()
        for replica in self.replicas:
            replica.prepost(self.config.slots)
        self.clients: List["SharedChainClient"] = []
        self.sim.process(self._ack_dispatcher(), name=f"{self.name}.ackdisp")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_owner_side(self) -> None:
        config = self.config
        memory, nic = self.owner_host.memory, self.owner_host.nic
        self.ack_buf = memory.allocate(TAG_SIZE * config.slots,
                                       f"{self.name}.ack")
        self.ack_mr = nic.register_mr(
            self.ack_buf.address, self.ack_buf.size,
            Access.LOCAL_WRITE | Access.REMOTE_WRITE,
            name=f"{self.name}.ackmr")
        self.ack_cq = nic.create_cq(with_channel=True,
                                    name=f"{self.name}.ackcq")
        self.qp_ack = nic.create_qp(self.ack_cq, self.ack_cq, sq_slots=8,
                                    rq_slots=config.slots,
                                    name=f"{self.name}.ackqp")
        self.qp_ack.rq.cyclic = True
        for _ in range(config.slots):
            self.qp_ack.post_recv(WorkRequest(Opcode.RECV, [], wr_id=0))
        self.ack_thread = self.owner_host.spawn_thread(f"{self.name}.ackhub")

    def _wire_chain(self) -> None:
        for prev, nxt in zip(self.replicas, self.replicas[1:]):
            prev.qp_down.connect(nxt.qp_up)
        self.replicas[-1].qp_down.connect(self.qp_ack)

    def ack_slot_addr(self, slot: int) -> int:
        return self.ack_buf.address + (slot % self.config.slots) * TAG_SIZE

    def attach_client(self, client_host: Host) -> "SharedChainClient":
        """Register a client: a fresh QP into the head replica's SRQ."""
        if len(self.clients) >= self.max_clients:
            raise RuntimeError(f"{self.name}: client limit reached")
        client = SharedChainClient(self, client_host, len(self.clients))
        self.clients.append(client)
        return client

    # ------------------------------------------------------------------
    # ACK hub (owner-side routing; client CPUs, never replica CPUs)
    # ------------------------------------------------------------------
    def _ack_dispatcher(self):
        sim = self.sim
        channel = self.ack_cq.channel
        while True:
            self.ack_cq.req_notify()
            yield channel.wait()
            yield self.ack_thread.run(self.config.event_wakeup_service_ns)
            for wc in self.ack_cq.poll(64):
                if not wc.has_imm:
                    continue
                tag = self.owner_host.memory.read(
                    self.ack_slot_addr(wc.imm), _TAG.size)
                client_id, client_op = _TAG.unpack(tag)
                if client_id < len(self.clients):
                    self.clients[client_id]._complete(client_op)


class SharedChainClient:
    """One client's handle onto a shared chain."""

    def __init__(self, chain: SharedChain, host: Host, client_id: int):
        self.chain = chain
        self.host = host
        self.client_id = client_id
        self.sim = chain.sim
        config = chain.config
        self.name = f"{chain.name}.c{client_id}"
        memory, nic = host.memory, host.nic
        # The client's local copy of (the parts it writes of) the region.
        self.region = memory.allocate(config.region_size,
                                      f"{self.name}.region")
        self.quota = config.slots // chain.max_clients
        self.md_stride = _meta_len(chain.group_size, 0)
        self.md_buf = memory.allocate(self.md_stride * self.quota,
                                      f"{self.name}.md")
        self.out_cq = nic.create_cq(name=f"{self.name}.outcq")
        head = chain.replicas[0]
        self.qp_out = nic.create_qp(self.out_cq, self.out_cq,
                                    sq_slots=4 * self.quota, rq_slots=8,
                                    name=f"{self.name}.out")
        remote = head.host.nic.create_qp(
            head.down_cq, head.up_cq, sq_slots=8, name=f"{self.name}.in",
            srq=head.srq)
        self.qp_out.connect(remote)
        self.submit_thread = host.spawn_thread(f"{self.name}.submit")
        self._next_op = 0
        self._acked = 0
        self._events: Dict[int, Event] = {}
        # Submission time per op id — latency bookkeeping lives here, not
        # on the (__slots__-lean) kernel Event.
        self._issue_ns: Dict[int, int] = {}
        self._window_waiters: List[Event] = []
        self._queue: deque = deque()
        self._kick: Optional[Event] = None
        self.sim.process(self._submitter(), name=f"{self.name}.submitter")

    # ------------------------------------------------------------------
    # Public API (the multi-client subset)
    # ------------------------------------------------------------------
    def write_local(self, offset: int, data: bytes) -> None:
        self._check_range(offset, len(data))
        self.host.memory.write(self.region.address + offset, data)

    def gwrite(self, offset: int, size: int, durable: bool = False) -> Event:
        self._check_range(offset, size)
        return self._submit(OpSpec(OpKind.GWRITE, offset=offset, size=size,
                                   durable=durable))

    def gmemcpy(self, src_offset: int, dst_offset: int, size: int,
                durable: bool = False) -> Event:
        self._check_range(src_offset, size)
        self._check_range(dst_offset, size)
        return self._submit(OpSpec(OpKind.GMEMCPY, src_offset=src_offset,
                                   dst_offset=dst_offset, size=size,
                                   durable=durable))

    def gflush(self) -> Event:
        return self._submit(OpSpec(OpKind.GFLUSH, durable=True))

    def gcas(self, *args, **kwargs):
        raise NotImplementedError(
            "gCAS needs slot-relative result scatter; use a dedicated "
            "single-client group for locking (see module docstring)")

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0 \
                or offset + size > self.chain.config.region_size:
            raise ValueError("outside the replicated region")

    @property
    def in_flight(self) -> int:
        return self._next_op - self._acked

    def _submit(self, op: OpSpec) -> Event:
        done = self.sim.event()
        self._queue.append((op, done, self.sim.now))
        if self._kick is not None and not self._kick.triggered:
            self._kick.succeed()
        return done

    # ------------------------------------------------------------------
    # Metadata: slot-independent images only
    # ------------------------------------------------------------------
    def _image(self, op: OpSpec, hop: int) -> bytes:
        chain = self.chain
        node = chain.replicas[hop]
        next_node = chain.replicas[hop + 1] \
            if hop + 1 < chain.group_size else None
        if op.kind is OpKind.GMEMCPY:
            local = WorkRequest(
                Opcode.WRITE,
                [Sge(node.region.address + op.src_offset, op.size)],
                remote_addr=node.region.address + op.dst_offset,
                rkey=node.region_mr.rkey, signaled=True)
        else:
            local = WorkRequest(Opcode.NOP, signaled=True)
        fd = WorkRequest(Opcode.NOP, signaled=False)
        if next_node is not None and op.kind is OpKind.GWRITE and op.size:
            fd = WorkRequest(
                Opcode.WRITE,
                [Sge(node.region.address + op.offset, op.size)],
                remote_addr=next_node.region.address + op.offset,
                rkey=next_node.region_mr.rkey, signaled=False)
        ff = WorkRequest(Opcode.NOP, signaled=False)
        if next_node is not None and (op.durable
                                      or op.kind is OpKind.GFLUSH):
            ff = WorkRequest(Opcode.READ, [Sge(0, 0)],
                             remote_addr=next_node.region.address,
                             rkey=next_node.region_mr.rkey, signaled=False)
        return b"".join((encode_wqe(local, owned=True),
                         encode_wqe(fd, owned=True),
                         encode_wqe(ff, owned=True)))

    def _build_message(self, op: OpSpec, op_id: int) -> bytes:
        parts = [self._image(op, hop)
                 for hop in range(self.chain.group_size)]
        tag = _TAG.pack(self.client_id, op_id & 0xFFFFFFFF)
        parts.append(tag.ljust(TAG_SIZE, b"\0"))
        return b"".join(parts)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def _submitter(self):
        sim, config = self.sim, self.chain.config
        head = self.chain.replicas[0]
        while True:
            if not self._queue:
                self._kick = sim.event()
                yield self._kick
                continue
            op, done, issue = self._queue.popleft()
            while self.in_flight >= self.quota:
                waiter = sim.event()
                self._window_waiters.append(waiter)
                yield waiter
            op_id = self._next_op
            self._next_op += 1
            self._events[op_id] = done
            self._issue_ns[op_id] = issue
            build_ns = (config.meta_build_base_ns
                        + config.meta_build_per_hop_ns
                        * self.chain.group_size)
            yield self.submit_thread.run(build_ns)
            message = self._build_message(op, op_id)
            md_addr = self.md_buf.address \
                + (op_id % self.quota) * self.md_stride
            self.host.memory.write(md_addr, message)
            posts = 1
            if op.kind is OpKind.GWRITE and op.size > 0:
                self.qp_out.post_send(WorkRequest(
                    Opcode.WRITE,
                    [Sge(self.region.address + op.offset, op.size)],
                    remote_addr=head.region.address + op.offset,
                    rkey=head.region_mr.rkey, signaled=False))
                posts += 1
            if op.kind is OpKind.GMEMCPY:
                self.host.memory.copy_within(
                    self.region.address + op.src_offset,
                    self.region.address + op.dst_offset, op.size)
            if op.durable or op.kind is OpKind.GFLUSH:
                self.qp_out.post_send(WorkRequest(
                    Opcode.READ, [Sge(0, 0)],
                    remote_addr=head.region.address,
                    rkey=head.region_mr.rkey, signaled=False))
                posts += 1
            self.qp_out.post_send(WorkRequest(
                Opcode.SEND, [Sge(md_addr, len(message))], signaled=False))
            yield self.submit_thread.run(posts * config.post_ns)

    def _complete(self, op_id: int) -> None:
        done = self._events.pop(op_id, None)
        self._acked += 1
        if self._window_waiters:
            waiters, self._window_waiters = self._window_waiters, []
            for waiter in waiters:
                waiter.succeed()
        if done is not None and not done.triggered:
            issue = self._issue_ns.pop(op_id, self.sim.now)
            done.succeed(OpResult(slot=op_id,
                                  latency_ns=self.sim.now - issue,
                                  result_map=b""))
