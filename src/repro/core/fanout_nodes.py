"""Node engines for NIC-offloaded fan-out replication (§7 extension).

The *setup* half of the fan-out topology: per-node memory carve-outs, QPs
and the pre-posted cyclic WQE patterns.  The client-side handle that
patches these descriptors per operation is
:class:`~repro.core.fanout.FanoutGroup`.

Scatter-gather arithmetic bounds the fan-out width: patching the primary
needs ``1 + 2×backups`` scatter segments, so with ``MAX_SGE = 6`` a group
supports up to 2 backups (replication factor 3 — the common deployment).
"""

from __future__ import annotations

from ..host import Host
from ..rdma.verbs import Access
from ..rdma.wqe import MAX_SGE, WQE_SIZE, Opcode, Sge, WorkRequest

__all__ = ["_FanoutPrimary", "_FanoutBackup",
           "_PRIMARY_BLOCK_WQES", "_BACKUP_BLOCK_WQES", "_BACKUP_MSG_SIZE"]

#: Descriptors patched per backup on the primary (forward WRITE + flush
#: READ + SEND).
_PRIMARY_BLOCK_WQES = 3
#: Descriptors patched on each backup (local op + client ACK).
_BACKUP_BLOCK_WQES = 2
_BACKUP_MSG_SIZE = _BACKUP_BLOCK_WQES * WQE_SIZE


class _FanoutPrimary:
    """The primary: local-op QP plus one fan-out QP per backup."""

    def __init__(self, host: Host, group):
        self.host = host
        self.group = group
        config = group.config
        memory, nic = host.memory, host.nic
        self.name = f"{group.name}.primary"
        self.region = memory.allocate(config.region_size, f"{self.name}.region")
        self.region_mr = nic.register_mr(
            self.region.address, self.region.size,
            Access.LOCAL_WRITE | Access.REMOTE_WRITE | Access.REMOTE_READ
            | Access.REMOTE_ATOMIC, name=f"{self.name}.region")
        backups = group.backup_count
        # Staging for each backup's outgoing metadata message.
        self.staging = memory.allocate(
            _BACKUP_MSG_SIZE * backups * config.slots, f"{self.name}.staging")
        self.up_cq = nic.create_cq(name=f"{self.name}.upcq")
        self.local_cq = nic.create_cq(name=f"{self.name}.localcq")
        self.out_cq = nic.create_cq(name=f"{self.name}.outcq")
        self.qp_up = nic.create_qp(self.out_cq, self.up_cq, sq_slots=8,
                                   rq_slots=config.slots,
                                   name=f"{self.name}.up")
        self.qp_local = nic.create_qp(self.local_cq, self.local_cq,
                                      sq_slots=2 * config.slots, rq_slots=8,
                                      name=f"{self.name}.local")
        self.qp_local.connect(self.qp_local)
        self.qp_ack = nic.create_qp(self.out_cq, self.out_cq,
                                    sq_slots=2 * config.slots, rq_slots=8,
                                    name=f"{self.name}.ack")
        self.qp_backups = [
            nic.create_qp(self.out_cq, self.out_cq,
                          sq_slots=4 * config.slots, rq_slots=8,
                          name=f"{self.name}.out{i}")
            for i in range(backups)]
        self.qp_up.rq.cyclic = True
        self.qp_local.sq.cyclic = True
        self.qp_ack.sq.cyclic = True
        for qp in self.qp_backups:
            qp.sq.cyclic = True

    def staging_slot(self, slot: int, backup: int) -> int:
        config = self.group.config
        per_slot = _BACKUP_MSG_SIZE * self.group.backup_count
        return (self.staging.address
                + (slot % config.slots) * per_slot
                + backup * _BACKUP_MSG_SIZE)

    def post_slot(self, slot: int) -> None:
        """Pre-post one op's WQE chain (consume-mode WAITs, cyclic rings)."""
        placeholder = WorkRequest(Opcode.NOP, signaled=False)
        # Local op: gated on the metadata RECV.
        self.qp_local.post_send(WorkRequest(
            Opcode.WAIT, wait_cq=self.up_cq.cq_id, wait_count=0,
            signaled=False))
        local_idx = self.qp_local.post_send(placeholder, owned=False)
        # Primary ACK to client: gated on the local op's completion.
        self.qp_ack.post_send(WorkRequest(
            Opcode.WAIT, wait_cq=self.local_cq.cq_id, wait_count=0,
            signaled=False))
        ack_idx = self.qp_ack.post_send(placeholder, owned=False)
        # Per-backup fan-out: data WRITE + metadata SEND, gated on the
        # local op so gCAS/gMEMCPY results/ordering hold.
        sg = [Sge(self.qp_local.sq.slot_address(local_idx), WQE_SIZE),
              Sge(self.qp_ack.sq.slot_address(ack_idx), WQE_SIZE)]
        for backup, qp in enumerate(self.qp_backups):
            qp.post_send(WorkRequest(
                Opcode.WAIT, wait_cq=self.local_cq.cq_id, wait_count=0,
                signaled=False))
            write_idx = qp.post_send(placeholder, owned=False)
            flush_idx = qp.post_send(placeholder, owned=False)
            send_idx = qp.post_send(placeholder, owned=False)
            if send_idx != write_idx + 2 or flush_idx != write_idx + 1:
                raise RuntimeError("fan-out block not contiguous")
            sg.append(Sge(qp.sq.slot_address(write_idx),
                          _PRIMARY_BLOCK_WQES * WQE_SIZE))
            sg.append(Sge(self.staging_slot(slot, backup), _BACKUP_MSG_SIZE))
        if len(sg) > MAX_SGE:
            raise RuntimeError("too many backups for the scatter list")
        self.qp_up.post_recv(WorkRequest(Opcode.RECV, sg, wr_id=slot))

    def prepost(self, count: int) -> None:
        for slot in range(count):
            self.post_slot(slot)


class _FanoutBackup:
    """A backup: receives data+metadata from the primary, ACKs the client."""

    def __init__(self, host: Host, group, index: int):
        self.host = host
        self.group = group
        self.index = index
        config = group.config
        memory, nic = host.memory, host.nic
        self.name = f"{group.name}.backup{index}"
        self.region = memory.allocate(config.region_size, f"{self.name}.region")
        self.region_mr = nic.register_mr(
            self.region.address, self.region.size,
            Access.LOCAL_WRITE | Access.REMOTE_WRITE | Access.REMOTE_READ
            | Access.REMOTE_ATOMIC, name=f"{self.name}.region")
        self.up_cq = nic.create_cq(name=f"{self.name}.upcq")
        self.local_cq = nic.create_cq(name=f"{self.name}.localcq")
        self.qp_up = nic.create_qp(self.local_cq, self.up_cq, sq_slots=8,
                                   rq_slots=config.slots,
                                   name=f"{self.name}.up")
        self.qp_local = nic.create_qp(self.local_cq, self.local_cq,
                                      sq_slots=2 * config.slots, rq_slots=8,
                                      name=f"{self.name}.local")
        self.qp_local.connect(self.qp_local)
        self.qp_ack = nic.create_qp(self.local_cq, self.local_cq,
                                    sq_slots=2 * config.slots, rq_slots=8,
                                    name=f"{self.name}.ack")
        self.qp_up.rq.cyclic = True
        self.qp_local.sq.cyclic = True
        self.qp_ack.sq.cyclic = True

    def post_slot(self, slot: int) -> None:
        placeholder = WorkRequest(Opcode.NOP, signaled=False)
        self.qp_local.post_send(WorkRequest(
            Opcode.WAIT, wait_cq=self.up_cq.cq_id, wait_count=0,
            signaled=False))
        local_idx = self.qp_local.post_send(placeholder, owned=False)
        self.qp_ack.post_send(WorkRequest(
            Opcode.WAIT, wait_cq=self.local_cq.cq_id, wait_count=0,
            signaled=False))
        ack_idx = self.qp_ack.post_send(placeholder, owned=False)
        self.qp_up.post_recv(WorkRequest(Opcode.RECV, [
            Sge(self.qp_local.sq.slot_address(local_idx), WQE_SIZE),
            Sge(self.qp_ack.sq.slot_address(ack_idx), WQE_SIZE),
        ], wr_id=slot))

    def prepost(self, count: int) -> None:
        for slot in range(count):
            self.post_slot(slot)
