"""Chain-replica control plane: memory carve-outs, QPs, slot pre-posting.

This is the *setup* half of the HyperLoop chain (§4.1/§4.2) — everything
a replica's CPU does once, off the critical path, so that the data path
can run entirely on the NICs afterwards.  The data-path half (the
client-side primitive API) lives in :mod:`repro.core.group`.

Every replica owns three queue pairs:

* ``qp_up``    — connected to the previous node (client for replica 0);
* ``qp_local`` — loopback, where the per-op *local* operation (NOP / CAS /
  local-copy WRITE) executes;
* ``qp_down``  — connected to the next node (the client's ACK QP for the
  tail).

For every pipeline slot ``k`` the replica's CPU pre-posts — once, off the
critical path — the chain of work requests described in §4.1/§4.2:

* ``qp_up``: a RECV whose scatter list points **at the four pre-posted WQE
  descriptors below plus the slot's staging buffer**, so the incoming
  metadata SEND patches the descriptors (including their ownership bits) by
  pure DMA;
* ``qp_local``: a consume-mode ``WAIT(up_recv_cq)`` then an unowned
  placeholder that the patch turns into the local op;
* ``qp_down``: a consume-mode ``WAIT(local_send_cq)`` then three unowned
  placeholders that become forward-data (WRITE), forward-flush (0-byte
  READ) and forward-metadata (SEND, or WRITE_WITH_IMM ACK at the tail).

After setup the replica CPU does nothing at all: the modified driver marks
the rings *cyclic*, so the NIC's ownership write-back re-arms each slot for
reuse and the pre-posted pattern serves unboundedly many operations.
"""

from __future__ import annotations

from ..host import Host
from ..rdma.verbs import Access
from ..rdma.wqe import WQE_SIZE, Opcode, Sge, WorkRequest
from .metadata import NodeLayout, max_staging_len, staging_len

__all__ = ["ReplicaEngine"]


class ReplicaEngine:
    """Per-replica state: memory carve-outs, QPs, and slot pre-posting."""

    def __init__(self, host: Host, group_name: str, hop: int,
                 group_size: int, config):
        self.host = host
        self.hop = hop
        self.group_size = group_size
        self.config = config
        self.name = f"{group_name}.r{hop}"
        memory, nic = host.memory, host.nic
        self.region = memory.allocate(config.region_size, f"{self.name}.region")
        stride = max_staging_len(group_size)
        self.staging = memory.allocate(stride * config.slots,
                                       f"{self.name}.staging")
        self.staging_stride = stride
        # The replicated region is remotely writable/readable and atomic-
        # capable (group locks live inside it).
        self.region_mr = nic.register_mr(
            self.region.address, self.region.size,
            Access.LOCAL_WRITE | Access.REMOTE_WRITE | Access.REMOTE_READ
            | Access.REMOTE_ATOMIC,
            name=f"{self.name}.region")
        slots = config.slots
        self.up_recv_cq = nic.create_cq(name=f"{self.name}.upcq")
        self.local_cq = nic.create_cq(name=f"{self.name}.localcq")
        self.down_cq = nic.create_cq(name=f"{self.name}.downcq")
        # Cyclic reuse requires each ring to hold *exactly* one pass of
        # the pre-posted slot pattern, so absolute slot k always maps back
        # to the same descriptor addresses.
        self.qp_up = nic.create_qp(self.down_cq, self.up_recv_cq,
                                   sq_slots=8, rq_slots=slots,
                                   name=f"{self.name}.up")
        self.qp_local = nic.create_qp(self.local_cq, self.local_cq,
                                      sq_slots=2 * slots, rq_slots=8,
                                      name=f"{self.name}.local")
        self.qp_down = nic.create_qp(self.down_cq, self.down_cq,
                                     sq_slots=4 * slots, rq_slots=8,
                                     name=f"{self.name}.down")
        self.qp_local.connect(self.qp_local)
        # Mirror the paper: the WQE rings are themselves registered memory
        # (remote manipulation is bounds-checked like any RDMA access).
        self.local_ring_mr = nic.ring_mr(self.qp_local, "sq")
        self.down_ring_mr = nic.ring_mr(self.qp_down, "sq")
        # Modified-driver cyclic rings: the slot pattern is pre-posted once
        # and re-armed by NIC ownership write-back, so the replica CPU does
        # no recurring work at all (§3.1's "very few cycles that initialize
        # the HyperLoop groups").
        self.qp_up.rq.cyclic = True
        self.qp_local.sq.cyclic = True
        self.qp_down.sq.cyclic = True
        self.posted_slots = 0

    def close(self) -> None:
        """Destroy QPs, deregister MRs, and return the carved memory."""
        nic, memory = self.host.nic, self.host.memory
        for qp in (self.qp_up, self.qp_local, self.qp_down):
            nic.destroy_qp(qp)
        for mr in (self.region_mr, self.local_ring_mr, self.down_ring_mr):
            nic.deregister_mr(mr)
        memory.free(self.region)
        memory.free(self.staging)

    def layout(self) -> NodeLayout:
        return NodeLayout(
            name=self.name,
            region_addr=self.region.address,
            region_rkey=self.region_mr.rkey,
            staging_addr=self.staging.address,
            staging_stride=self.staging_stride,
            slots=self.config.slots)

    # ------------------------------------------------------------------
    # Slot pre-posting (control plane)
    # ------------------------------------------------------------------
    def post_slot(self, slot: int) -> None:
        """Pre-post the full WQE chain for pipeline slot ``slot``.

        WAITs use consume-mode (``wait_count=0``) so the cyclic rings can
        re-serve the same descriptors forever without count patching.
        """
        placeholder = WorkRequest(Opcode.NOP, signaled=False)
        # Local queue: WAIT on the upstream RECV CQ, then the local op.
        self.qp_local.post_send(WorkRequest(
            Opcode.WAIT, wait_cq=self.up_recv_cq.cq_id, wait_count=0,
            signaled=False))
        local_idx = self.qp_local.post_send(placeholder, owned=False)
        # Down queue: WAIT on the local op's CQE, then the three forwards.
        self.qp_down.post_send(WorkRequest(
            Opcode.WAIT, wait_cq=self.local_cq.cq_id, wait_count=0,
            signaled=False))
        fd_idx = self.qp_down.post_send(placeholder, owned=False)
        ff_idx = self.qp_down.post_send(placeholder, owned=False)
        fm_idx = self.qp_down.post_send(placeholder, owned=False)
        # Upstream RECV: scatter the inbound metadata onto the four
        # descriptors above, remainder into the staging buffer.
        sg = [
            Sge(self.qp_local.sq.slot_address(local_idx), WQE_SIZE),
            Sge(self.qp_down.sq.slot_address(fd_idx), WQE_SIZE),
            Sge(self.qp_down.sq.slot_address(ff_idx), WQE_SIZE),
            Sge(self.qp_down.sq.slot_address(fm_idx), WQE_SIZE),
            Sge(self.layout().staging_slot(slot),
                staging_len(self.group_size, self.hop)),
        ]
        self.qp_up.post_recv(WorkRequest(Opcode.RECV, sg, wr_id=slot))
        self.posted_slots += 1

    def prepost(self, count: int) -> None:
        for slot in range(self.posted_slots, self.posted_slots + count):
            self.post_slot(slot)
