"""One-sided client reads from any replica.

HyperLoop "allows lock-free one-sided reads from exactly one replica" and,
with read locks, consistent reads from *all* replicas (§5).  Both need the
client to issue RDMA READs against a chosen replica, which the chain QPs do
not provide — so each group also wires one dedicated read QP per replica.

READs are one-sided: the replica CPU is never involved, preserving the
zero-replica-CPU property on the read path too.
"""

from __future__ import annotations

from typing import Dict

from ..rdma.wqe import Opcode, Sge, WorkRequest
from ..sim.engine import Event

__all__ = ["ClientReadPath"]


class ClientReadPath:
    """Per-group read fan-out: one client↔replica QP pair per replica."""

    MAX_READ = 64 * 1024

    def __init__(self, client_host, replicas, name: str, slots: int = 64):
        self.client_host = client_host
        self.replicas = replicas
        self.slots = slots
        nic = client_host.nic
        self.buf = client_host.memory.allocate(self.MAX_READ * slots,
                                               f"{name}.readbuf")
        self.cq = nic.create_cq(with_channel=True, name=f"{name}.readcq")
        self.qps = []
        for hop, replica in enumerate(replicas):
            local_qp = nic.create_qp(self.cq, self.cq, sq_slots=slots + 8,
                                     rq_slots=8, name=f"{name}.read{hop}")
            remote_cq = replica.host.nic.create_cq(name=f"{name}.rrcq{hop}")
            remote_qp = replica.host.nic.create_qp(remote_cq, remote_cq,
                                                   sq_slots=8, rq_slots=8,
                                                   name=f"{name}.rread{hop}")
            local_qp.connect(remote_qp)
            self.qps.append(local_qp)
        self._next_token = 0
        self._waiters: Dict[int, Event] = {}
        self._sizes: Dict[int, int] = {}
        self._slot_addrs: Dict[int, int] = {}
        client_host.sim.process(self._dispatcher(), name=f"{name}.readdisp")

    def read(self, hop: int, region_offset: int, size: int) -> Event:
        """One-sided READ of a replica's region; event value is the bytes.

        Note: a READ arriving at the replica also flushes its NIC cache
        (the same firmware behaviour gFLUSH uses), so reads observe fully
        written data.
        """
        if size > self.MAX_READ:
            raise ValueError(f"read of {size}B exceeds {self.MAX_READ}B limit")
        if len(self._waiters) >= self.slots:
            raise RuntimeError(
                f"more than {self.slots} one-sided reads in flight")
        replica = self.replicas[hop]
        token = self._next_token
        self._next_token += 1
        slot_addr = self.buf.address + (token % self.slots) * self.MAX_READ
        done = self.client_host.sim.event()
        self._waiters[token] = done
        self._sizes[token] = size
        self._slot_addrs[token] = slot_addr
        self.qps[hop].post_send(WorkRequest(
            Opcode.READ, [Sge(slot_addr, size)], wr_id=token,
            remote_addr=replica.region.address + region_offset,
            rkey=replica.region_mr.rkey, signaled=True))
        return done

    def close(self) -> None:
        """Destroy the read QPs and free the staging buffer."""
        for hop, local_qp in enumerate(self.qps):
            remote_qp = local_qp.remote
            local_qp.nic.destroy_qp(local_qp)
            if remote_qp is not None and remote_qp is not local_qp:
                remote_qp.nic.destroy_qp(remote_qp)
        self.qps = []
        self.client_host.memory.free(self.buf)
        for waiter in self._waiters.values():
            if not waiter.triggered:
                waiter.fail(RuntimeError("read path closed"))
        self._waiters.clear()

    def _dispatcher(self):
        sim = self.client_host.sim
        channel = self.cq.channel
        while True:
            self.cq.req_notify()
            yield channel.wait()
            for wc in self.cq.poll(64):
                done = self._waiters.pop(wc.wr_id, None)
                if done is None or done.triggered:
                    continue
                size = self._sizes.pop(wc.wr_id)
                addr = self._slot_addrs.pop(wc.wr_id)
                done.succeed(self.client_host.memory.read(addr, size))
