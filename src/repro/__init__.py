"""HyperLoop reproduction (SIGCOMM 2018).

Group-based NIC-offloading for replicated transactions in multi-tenant
storage systems, reproduced end-to-end on a discrete-event simulated
RDMA/NVM substrate.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro.cluster import ScenarioConfig, build_scenario

    scenario = build_scenario(ScenarioConfig(
        backend="hyperloop", replicas=3, seed=1,
        backend_kwargs={"slots": 64}))
    group = scenario.build_group()

    def workload(sim):
        group.write_local(0, b"hello")
        result = yield group.gwrite(0, 5, durable=True)
        print(f"replicated in {result.latency_ns / 1000:.1f} us")

    scenario.cluster.sim.process(workload(scenario.cluster.sim))
    scenario.cluster.run()

Backends resolve by name through :mod:`repro.backend`'s registry
(``repro.backend.names()`` lists them); the concrete group classes remain
importable for advanced use.
"""

from . import backend
from .host import Cluster, Host, HostParams
from .backend import ReplicationBackend
from .cluster import Scenario, ScenarioConfig, build_scenario
from .core.fanout import FanoutGroup
from .core.multiclient import SharedChain, SharedChainClient
from .core.group import GroupConfig, HyperLoopGroup, OpResult
from .core.client import ReplicatedStore, StoreConfig, initialize, recover
from .core.recovery import ChainFailure, ChainSupervisor, RecoveryConfig
from .baseline.naive import NaiveConfig, NaiveGroup
from .apps.logqueue import QueueConfig, ReplicatedQueue
from .apps.rediscache import CacheConfig, ReplicatedCache
from .apps.rockskv import ReplicatedRocksKV, RocksConfig
from .apps.mongolike import MongoConfig, MongoLikeDB, MongoSession
from .storage.twophase import PartitionWrite, TwoPhaseCoordinator
from .storage.wal import LogEntry, LogRecord, RecordKind
from .workloads.ycsb import YCSBConfig, YCSBWorkload

__version__ = "1.0.0"

__all__ = [
    "backend",
    "Cluster",
    "Host",
    "HostParams",
    "ReplicationBackend",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
    "FanoutGroup",
    "SharedChain",
    "SharedChainClient",
    "GroupConfig",
    "HyperLoopGroup",
    "OpResult",
    "ReplicatedStore",
    "StoreConfig",
    "initialize",
    "recover",
    "ChainFailure",
    "ChainSupervisor",
    "RecoveryConfig",
    "NaiveConfig",
    "NaiveGroup",
    "QueueConfig",
    "ReplicatedQueue",
    "CacheConfig",
    "ReplicatedCache",
    "ReplicatedRocksKV",
    "RocksConfig",
    "MongoConfig",
    "MongoLikeDB",
    "MongoSession",
    "PartitionWrite",
    "TwoPhaseCoordinator",
    "LogEntry",
    "LogRecord",
    "RecordKind",
    "YCSBConfig",
    "YCSBWorkload",
    "__version__",
]
