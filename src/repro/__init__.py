"""HyperLoop reproduction (SIGCOMM 2018).

Group-based NIC-offloading for replicated transactions in multi-tenant
storage systems, reproduced end-to-end on a discrete-event simulated
RDMA/NVM substrate.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import Cluster, HyperLoopGroup, GroupConfig

    cluster = Cluster(seed=1)
    client = cluster.add_host("client")
    replicas = cluster.add_hosts(3, prefix="replica")
    group = HyperLoopGroup(client, replicas, GroupConfig(slots=64))

    def workload(sim):
        group.write_local(0, b"hello")
        result = yield group.gwrite(0, 5, durable=True)
        print(f"replicated in {result.latency_ns / 1000:.1f} us")

    cluster.sim.process(workload(cluster.sim))
    cluster.run()
"""

from .host import Cluster, Host, HostParams
from .core.fanout import FanoutGroup
from .core.multiclient import SharedChain, SharedChainClient
from .core.group import GroupConfig, HyperLoopGroup, OpResult
from .core.client import ReplicatedStore, StoreConfig, initialize, recover
from .core.recovery import ChainFailure, ChainSupervisor, RecoveryConfig
from .baseline.naive import NaiveConfig, NaiveGroup
from .apps.logqueue import QueueConfig, ReplicatedQueue
from .apps.rediscache import CacheConfig, ReplicatedCache
from .apps.rockskv import ReplicatedRocksKV, RocksConfig
from .apps.mongolike import MongoConfig, MongoLikeDB, MongoSession
from .storage.twophase import PartitionWrite, TwoPhaseCoordinator
from .storage.wal import LogEntry, LogRecord, RecordKind
from .workloads.ycsb import YCSBConfig, YCSBWorkload

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "Host",
    "HostParams",
    "FanoutGroup",
    "SharedChain",
    "SharedChainClient",
    "GroupConfig",
    "HyperLoopGroup",
    "OpResult",
    "ReplicatedStore",
    "StoreConfig",
    "initialize",
    "recover",
    "ChainFailure",
    "ChainSupervisor",
    "RecoveryConfig",
    "NaiveConfig",
    "NaiveGroup",
    "QueueConfig",
    "ReplicatedQueue",
    "CacheConfig",
    "ReplicatedCache",
    "ReplicatedRocksKV",
    "RocksConfig",
    "MongoConfig",
    "MongoLikeDB",
    "MongoSession",
    "PartitionWrite",
    "TwoPhaseCoordinator",
    "LogEntry",
    "LogRecord",
    "RecordKind",
    "YCSBConfig",
    "YCSBWorkload",
    "__version__",
]
