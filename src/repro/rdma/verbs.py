"""Verbs-style userspace RDMA API.

This mirrors the slice of ``libibverbs`` that HyperLoop and its baselines
are written against: protection domains are implicit (one per NIC), and the
objects here are memory regions with lkeys/rkeys and access flags, completion
queues with optional completion channels (event mode), and reliable-connected
queue pairs.

The separation of concerns matches real systems: *verbs* is the user-facing
API, :mod:`repro.rdma.driver` owns descriptor rings, and
:mod:`repro.rdma.nic` executes descriptors.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from enum import Enum, IntFlag
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from ..sim.engine import Event, Simulator
from .driver import WorkQueue
from .wqe import Opcode, WorkRequest

if TYPE_CHECKING:
    from .nic import RNIC

__all__ = [
    "Access",
    "MemoryRegion",
    "RemoteAccessError",
    "WCStatus",
    "WorkCompletion",
    "CompletionChannel",
    "CompletionQueue",
    "QPState",
    "QueuePair",
]


class Access(IntFlag):
    """Memory-region access permissions."""

    LOCAL_WRITE = 1
    REMOTE_READ = 2
    REMOTE_WRITE = 4
    REMOTE_ATOMIC = 8


class RemoteAccessError(Exception):
    """rkey mismatch, out-of-bounds access, or missing permission."""


@dataclass(frozen=True, slots=True)
class MemoryRegion:
    """A registered slice of host memory.

    ``rkey`` authenticates remote access; bounds and access flags are checked
    by the NIC on every remote operation (the paper's safety requirement for
    exposing driver metadata regions, §7).
    """

    addr: int
    length: int
    lkey: int
    rkey: int
    access: Access
    name: str = ""

    def check(self, address: int, size: int, needed: Access) -> None:
        if not (self.addr <= address and address + size <= self.addr + self.length):
            raise RemoteAccessError(
                f"MR {self.name or self.rkey}: [{address}, {address + size}) "
                f"outside [{self.addr}, {self.addr + self.length})")
        if needed and not (self.access & needed):
            raise RemoteAccessError(
                f"MR {self.name or self.rkey}: missing access {needed!r}")


class WCStatus(Enum):
    SUCCESS = "success"
    REMOTE_ACCESS_ERROR = "remote-access-error"
    RNR_RETRY_EXCEEDED = "rnr-retry-exceeded"
    FLUSHED = "flushed"


@dataclass(frozen=True, slots=True)
class WorkCompletion:
    """A completion-queue entry as returned by ``poll``."""

    wr_id: int
    opcode: Opcode
    status: WCStatus
    byte_len: int = 0
    imm: int = 0
    qp_num: int = 0
    has_imm: bool = False


class CompletionChannel:
    """Event-mode completion notification (``ibv_comp_channel``).

    A host thread blocks on :meth:`wait` and is woken when an armed CQ gets a
    completion.  The *scheduling* cost of that wakeup is paid by the caller
    via the CPU model — this is exactly where Naïve-RDMA's latency comes
    from.
    """

    __slots__ = ("sim", "_pending", "_waiter")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._pending = 0
        self._waiter: Optional[Event] = None

    def notify(self) -> None:
        self._pending += 1
        if self._waiter is not None and not self._waiter.triggered:
            waiter, self._waiter = self._waiter, None
            waiter.succeed()

    def wait(self) -> Event:
        """Event that fires when a notification is (or becomes) available."""
        event = self.sim.event()
        if self._pending > 0:
            self._pending -= 1
            event.succeed()
        else:
            if self._waiter is not None and not self._waiter.triggered:
                raise RuntimeError("completion channel already has a waiter")
            self._waiter = event
        return event


class CompletionQueue:
    """A completion queue.

    ``count`` is the total number of CQEs ever added — the monotonic counter
    that WAIT work requests compare against (CORE-Direct semantics).
    """

    __slots__ = ("sim", "cq_id", "name", "channel", "_entries", "count",
                 "_wait_consumed", "_armed", "_wait_subscribers")

    _ids = itertools.count(1)

    def __init__(self, sim: Simulator, channel: Optional[CompletionChannel] = None,
                 name: str = "") -> None:
        self.sim = sim
        self.cq_id = next(CompletionQueue._ids)
        self.name = name or f"cq{self.cq_id}"
        self.channel = channel
        self._entries: Deque[WorkCompletion] = deque()
        self.count = 0
        # Completions consumed by consume-mode WAIT WQEs, per waiting QP
        # (CORE-Direct semantics: each waiting queue advances through the
        # CQ's completion stream independently, so several queues can fan
        # out from one CQ and static cyclic WAIT descriptors need no
        # per-op count patching).
        self._wait_consumed: Dict[int, int] = {}
        self._armed = False
        self._wait_subscribers: List[Tuple[int, Callable[[], None]]] = []

    @property
    def wait_consumed(self) -> int:
        """Total consume-mode WAIT consumptions (diagnostics)."""
        return sum(self._wait_consumed.values())

    def wait_cursor(self, qp_num: int) -> int:
        """How many completions the given QP's WAITs have consumed."""
        return self._wait_consumed.get(qp_num, 0)

    def advance_wait_cursor(self, qp_num: int, target: int) -> None:
        self._wait_consumed[qp_num] = target

    def push(self, wc: WorkCompletion) -> None:
        """Add a completion (NIC side)."""
        self._entries.append(wc)
        self.count += 1
        if self.channel is not None and self._armed:
            self._armed = False
            self.channel.notify()
        if self._wait_subscribers:
            ready = [s for s in self._wait_subscribers if s[0] <= self.count]
            self._wait_subscribers = [s for s in self._wait_subscribers
                                      if s[0] > self.count]
            for _target, callback in ready:
                callback()

    def poll(self, max_entries: int = 16) -> List[WorkCompletion]:
        """Drain up to ``max_entries`` completions (software side)."""
        got = []
        while self._entries and len(got) < max_entries:
            got.append(self._entries.popleft())
        return got

    def req_notify(self) -> None:
        """Arm the CQ: next completion notifies the channel (event mode)."""
        if self.channel is None:
            raise RuntimeError(f"{self.name}: no completion channel")
        self._armed = True
        if self._entries:
            # Edge case mirrored from real verbs: arm after completions
            # arrived — notify immediately so the consumer never sleeps
            # through a completion.
            self._armed = False
            self.channel.notify()

    def subscribe_count(self, target_count: int,
                        callback: Callable[[], None]) -> None:
        """Run ``callback`` once ``count`` reaches ``target_count`` (WAIT)."""
        if self.count >= target_count:
            callback()
        else:
            self._wait_subscribers.append((target_count, callback))


class QPState(Enum):
    RESET = "reset"
    RTS = "rts"       # Ready-to-send (we collapse INIT/RTR/RTS).
    ERROR = "error"


class QueuePair:
    """A reliable-connected queue pair.

    Created via :meth:`repro.rdma.nic.RNIC.create_qp`.  ``connect`` wires two
    QPs together (or a QP to itself for HyperLoop's loopback copy/CAS QPs).
    """

    __slots__ = ("nic", "qp_num", "name", "sq", "rq", "send_cq", "recv_cq",
                 "state", "remote", "uses_srq")

    _nums = itertools.count(1)

    def __init__(self, nic: "RNIC", send_queue: WorkQueue, recv_queue: WorkQueue,
                 send_cq: CompletionQueue, recv_cq: CompletionQueue, name: str = "") -> None:
        self.nic = nic
        self.qp_num = next(QueuePair._nums)
        self.name = name or f"qp{self.qp_num}"
        self.sq = send_queue
        self.rq = recv_queue
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.state = QPState.RESET
        self.remote: Optional["QueuePair"] = None
        self.uses_srq = False  # Set by RNIC.create_qp for shared-RQ QPs.

    def connect(self, remote: "QueuePair") -> None:
        """Transition both QPs to RTS, connected to each other.

        Self-connection (``qp.connect(qp)``) creates a loopback QP, used by
        HyperLoop for local memory copy and local CAS (§4.2).
        """
        if self.state is not QPState.RESET and self.remote is not remote:
            raise RuntimeError(f"{self.name}: already connected")
        self.remote = remote
        self.state = QPState.RTS
        if remote is not self:
            remote.remote = self
            remote.state = QPState.RTS

    @property
    def is_loopback(self) -> bool:
        return self.remote is self

    # ------------------------------------------------------------------
    # Posting (delegates to driver rings, then rings the NIC doorbell)
    # ------------------------------------------------------------------
    def post_send(self, wr: WorkRequest, owned: bool = True) -> int:
        """Post to the send queue; returns the absolute slot index.

        ``owned=False`` is HyperLoop's deferred-ownership pre-posting.
        """
        if self.state is not QPState.RTS:
            raise RuntimeError(f"{self.name}: not connected (state={self.state})")
        if wr.opcode is Opcode.RECV:
            raise ValueError("RECV work requests go to post_recv")
        index = self.sq.post(wr, owned=owned)
        self.nic.doorbell(self)
        return index

    def post_recv(self, wr: WorkRequest) -> int:
        if wr.opcode is not Opcode.RECV:
            raise ValueError(f"post_recv requires RECV, got {wr.opcode}")
        return self.rq.post(wr, owned=True)

    def grant_send(self, index: int) -> None:
        """Grant NIC ownership of a deferred send WQE, then doorbell."""
        self.sq.grant(index)
        self.nic.doorbell(self)

    def to_error(self) -> None:
        """Flush the QP: outstanding WQEs complete with FLUSHED status."""
        self.state = QPState.ERROR
        # A dead QP's rings stop re-arming (cyclic rings would otherwise
        # never drain).  A shared RQ keeps serving its other QPs.
        self.sq.cyclic = False
        if not self.uses_srq:
            self.rq.cyclic = False
        while True:
            wqe = self.sq.peek_head()
            if wqe is None:
                break
            self.sq.advance_head()
            self.send_cq.push(WorkCompletion(
                wr_id=wqe.wr_id, opcode=wqe.opcode, status=WCStatus.FLUSHED,
                qp_num=self.qp_num))
        if not self.uses_srq:
            self.rq.reset()
