"""The userspace NIC driver — including HyperLoop's modifications.

The stock driver behaviour (mirroring ``libmlx4``):

* work queues are rings of fixed-size WQE descriptors in *host memory*;
* ``post`` serializes a :class:`~repro.rdma.wqe.WorkRequest` into the next
  ring slot and hands **ownership** to the NIC, after which the descriptor
  must not be touched by software.

HyperLoop modifies 58 lines of this driver in the paper; here the analogous
changes are:

* :meth:`WorkQueue.post` takes ``owned=False`` so a WQE can be pre-posted
  *without* yielding ownership — the NIC will stall at it until some DMA
  (local or remote) flips the ownership bit in ring memory;
* :meth:`WorkQueue.slot_address` / :meth:`WorkQueue.field_address` expose
  descriptor addresses so the ring can be registered as an RDMA-writable
  memory region and patched by a remote peer ("remote work request
  manipulation", §4.1);
* safety check: a ring registered for remote access only accepts scatter
  writes that stay inside the ring allocation (enforced by the MR bounds in
  :mod:`repro.rdma.verbs`).
"""

from __future__ import annotations

from typing import Optional

from ..nvm.memory import Allocation, MemoryDevice
from .wqe import (
    WQE_SIZE,
    DecodedWQE,
    Opcode,
    WorkRequest,
    WQEFlags,
    decode_wqe,
    encode_wqe,
)

__all__ = ["WorkQueue", "RingFullError"]


class RingFullError(Exception):
    """Posting would overwrite a descriptor the NIC has not consumed yet."""


class WorkQueue:
    """A ring of WQE descriptors in host memory.

    ``tail`` is the software producer index (absolute, monotonically
    increasing); ``head`` is the NIC consumer index.  Slot ``i`` lives at
    ``ring.address + (i % num_slots) * WQE_SIZE``.
    """

    __slots__ = ("memory", "ring", "name", "num_slots", "head", "tail",
                 "cyclic")

    def __init__(self, memory: MemoryDevice, ring: Allocation, name: str = "wq",
                 cyclic: bool = False) -> None:
        if ring.size % WQE_SIZE:
            raise ValueError("ring size must be a multiple of WQE_SIZE")
        self.memory = memory
        self.ring = ring
        self.name = name
        self.num_slots = ring.size // WQE_SIZE
        self.head = 0  # NIC consumer (absolute index).
        self.tail = 0  # Software producer (absolute index).
        #: HyperLoop driver modification: a cyclic ring re-arms each
        #: descriptor when the NIC consumes it (the NIC clears the
        #: ownership bit on write-back, except for static WAIT entries), so
        #: a slot pattern pre-posted once serves unboundedly many
        #: operations with ZERO recurring CPU — each reuse is re-activated
        #: by the next incoming metadata scatter.
        self.cyclic = cyclic

    # ------------------------------------------------------------------
    # Software (driver) side
    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return self.tail - self.head

    @property
    def free_slots(self) -> int:
        return self.num_slots - self.outstanding

    def slot_address(self, index: int) -> int:
        """Host-memory address of the descriptor for absolute slot ``index``."""
        return self.ring.address + (index % self.num_slots) * WQE_SIZE

    def field_address(self, index: int, field_offset: int) -> int:
        """Address of one descriptor field — the target of remote patching."""
        if not 0 <= field_offset < WQE_SIZE:
            raise ValueError(f"field offset {field_offset} outside descriptor")
        return self.slot_address(index) + field_offset

    def post(self, wr: WorkRequest, owned: bool = True) -> int:
        """Serialize ``wr`` into the next slot; returns its absolute index.

        ``owned=False`` is the HyperLoop driver modification: the descriptor
        is written but the NIC will not execute it until its ownership bit is
        set by a later DMA write (remote manipulation) or :meth:`grant`.
        """
        if self.free_slots <= 0:
            raise RingFullError(f"{self.name}: ring full ({self.num_slots} slots)")
        index = self.tail
        self.memory.write(self.slot_address(index), encode_wqe(wr, owned=owned))
        self.tail += 1
        return index

    def grant(self, index: int) -> None:
        """Set the ownership bit of a previously posted descriptor."""
        addr = self.field_address(index, 1)  # OFF_FLAGS
        flags = self.memory.read(addr, 1)[0]
        self.memory.write(addr, bytes([flags | WQEFlags.OWNED]))

    # ------------------------------------------------------------------
    # NIC side
    # ------------------------------------------------------------------
    def peek_head(self) -> Optional[DecodedWQE]:
        """Parse the descriptor at the consumer head, or None if empty.

        The NIC re-reads ring memory on every peek, so descriptor bytes
        patched by an incoming scatter DMA genuinely take effect.
        """
        if self.head >= self.tail:
            return None
        raw = self.memory.read(self.slot_address(self.head), WQE_SIZE)
        return decode_wqe(raw)

    def advance_head(self) -> None:
        if self.head >= self.tail:
            raise RuntimeError(f"{self.name}: advancing past tail")
        if self.cyclic:
            # NIC write-back: clear ownership so the stale descriptor stalls
            # the queue until the next scatter re-activates it.  WAIT and
            # RECV descriptors, and anything marked STATIC, stay armed —
            # they serve every reuse of their slot unchanged.
            addr = self.slot_address(self.head)
            opcode = self.memory.read(addr, 1)[0]
            flags_addr = addr + 1  # OFF_FLAGS
            flags = self.memory.read(flags_addr, 1)[0]
            if opcode not in (Opcode.WAIT, Opcode.RECV) \
                    and not flags & WQEFlags.STATIC:
                self.memory.write(flags_addr,
                                  bytes([flags & ~WQEFlags.OWNED]))
            self.tail += 1  # Re-arm the slot at the ring tail.
        self.head += 1

    def reset(self) -> None:
        """Drop all outstanding descriptors (QP teardown / error flush)."""
        self.head = self.tail
