"""The RDMA NIC model.

Executes WQE descriptors exactly as they sit in host ring memory (see
:mod:`repro.rdma.wqe`), which is what makes HyperLoop's two key mechanisms
work without any special-casing:

* **WAIT (CORE-Direct)** — a WAIT descriptor at the head of a send queue
  stalls the queue until a *different* queue's completion queue reaches a
  target count; when it does, the NIC advances and executes the following
  descriptors.  This is the "when" of offloaded forwarding (§4.1).
* **Deferred ownership / remote manipulation** — a descriptor whose
  ownership bit is clear also stalls the queue.  An inbound SEND whose RECV
  scatter list points into ring memory can patch descriptor fields *and* set
  the ownership bit; the NIC re-reads descriptors from memory on every
  attempt, so the patch genuinely changes what is executed.  This is the
  "what" (§4.1).

Each QP's send queue is serviced by its own process (NICs pipeline across
QPs); per-WQE processing delay models the NIC's message-rate limit and the
shared egress port models serialization at line rate.  Inbound messages run
through a FIFO ingress pipeline with its own per-message cost.

Durability: inbound DMA writes go through the NIC's volatile write cache
(:class:`~repro.nvm.cache.NICWriteCache`).  Serving *any* inbound READ
flushes the cache first — the firmware behaviour HyperLoop leverages to
build gFLUSH out of a 0-byte READ (§4.2).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from ..nvm.cache import NICWriteCache
from ..nvm.memory import MemoryDevice
from ..sim.engine import Event, ProcessGenerator, Simulator
from ..sim.stats import Counter
from ..sim.trace import Tracer
from ..sim.units import us
from .driver import WorkQueue
from .fabric import Fabric, Port
from .verbs import (
    Access,
    CompletionChannel,
    CompletionQueue,
    MemoryRegion,
    QPState,
    QueuePair,
    RemoteAccessError,
    WCStatus,
    WorkCompletion,
)
from .wqe import WQE_SIZE, DecodedWQE, Opcode, Sge

__all__ = ["NICParams", "RNIC", "Message"]


@dataclass(slots=True)
class NICParams:
    """NIC timing and sizing parameters (ConnectX-3-class defaults)."""

    wqe_processing_ns: int = 160     # Parse + initiate one send-side WQE.
    ingress_processing_ns: int = 220  # Handle one inbound request message.
    ack_processing_ns: int = 40       # Handle one inbound ACK/response.
    wait_processing_ns: int = 60      # Evaluate a satisfied WAIT.
    loopback_ns: int = 350            # Self-delivery for loopback QPs.
    dma_bytes_per_ns: float = 16.0    # PCIe gen3 x8-ish gather/scatter rate.
    rnr_retry_delay_ns: int = us(20)  # Receiver-not-ready retry backoff.
    max_rnr_retries: int = 512
    cache_writeback_ns: int = us(100)
    cache_capacity_bytes: int = 1 << 20

    def dma_ns(self, size_bytes: int) -> int:
        return int(size_bytes / self.dma_bytes_per_ns)


@dataclass(slots=True)
class Message:
    """A transport-layer message between two NICs (request or response)."""

    kind: str                 # send | write | write_imm | read_req | cas_req
    #                         # | ack | read_resp | cas_resp
    src_nic: str
    src_qp: int
    dst_qp: int
    req_id: int
    payload: bytes = b""
    remote_addr: int = 0
    rkey: int = 0
    length: int = 0
    imm: int = 0
    has_imm: bool = False
    compare: int = 0
    swap: int = 0
    status: WCStatus = WCStatus.SUCCESS
    rnr_retries: int = 0


@dataclass(slots=True)
class _PendingOp:
    """Sender-side state for an initiated, not-yet-completed operation."""

    qp: QueuePair
    wqe: DecodedWQE


class RNIC:
    """One RDMA NIC: verbs objects, WQE execution, ingress pipeline."""

    __slots__ = ("sim", "memory", "fabric", "name", "params", "port", "cache",
                 "qps", "cqs", "mrs", "_next_key", "_kicks", "_outstanding",
                 "_drain_waiters", "_pending", "_ingress", "_ingress_busy",
                 "tracer", "rnr_retries", "remote_access_errors",
                 "messages_handled", "wqes_executed",
                 "_slow_factor", "_slow_until")

    _req_ids = itertools.count(1)

    def __init__(self, sim: Simulator, memory: MemoryDevice, fabric: Fabric,
                 name: str, params: Optional[NICParams] = None) -> None:
        self.sim = sim
        self.memory = memory
        self.fabric = fabric
        self.name = name
        self.params = params or NICParams()
        self.port: Port = fabric.create_port(name)
        self.port.attach(self._ingress_enqueue)
        self.cache = NICWriteCache(
            sim, memory,
            writeback_delay_ns=self.params.cache_writeback_ns,
            capacity_bytes=self.params.cache_capacity_bytes)
        self.qps: Dict[int, QueuePair] = {}
        self.cqs: Dict[int, CompletionQueue] = {}
        self.mrs: Dict[int, MemoryRegion] = {}
        self._next_key = itertools.count(0x1000)
        self._kicks: Dict[int, Event] = {}
        self._outstanding: Dict[int, int] = {}
        self._drain_waiters: Dict[int, List[Event]] = {}
        self._pending: Dict[int, _PendingOp] = {}
        self._ingress: Deque[Message] = deque()
        self._ingress_busy = False
        # Straggler injection (repro.faults): processing delays scale by
        # _slow_factor while sim.now < _slow_until.
        self._slow_factor = 1.0
        self._slow_until = 0
        # Counters for assertions and reports.
        self.tracer: Optional[Tracer] = None  # Set by Cluster.enable_tracing.
        self.rnr_retries = Counter(f"{name}.rnr")
        self.remote_access_errors = Counter(f"{name}.access_err")
        self.messages_handled = Counter(f"{name}.msgs")
        self.wqes_executed = Counter(f"{name}.wqes")

    def __repr__(self) -> str:
        return f"<RNIC {self.name}>"

    # ------------------------------------------------------------------
    # Straggler injection
    # ------------------------------------------------------------------
    def inflate_latency(self, factor: float, until_ns: int) -> None:
        """Make this NIC a straggler: scale every per-message processing
        delay (WQE parse, ingress, ACK, DMA, loopback) by ``factor``
        until ``until_ns``.

        Models a sick NIC — firmware babysitting, PCIe link retraining,
        thermal throttling — that is *alive* (nothing is dropped) but
        slow enough to take the whole chain hostage.  Overlapping calls:
        the strongest factor and the latest deadline win.
        """
        if factor < 1.0:
            raise ValueError(f"inflation factor must be >= 1, got {factor}")
        if self.sim.now < self._slow_until:
            factor = max(factor, self._slow_factor)
            until_ns = max(until_ns, self._slow_until)
        self._slow_factor = factor
        self._slow_until = until_ns

    @property
    def straggling(self) -> bool:
        """True while an :meth:`inflate_latency` window is active."""
        return self.sim.now < self._slow_until

    @property
    def inflation_factor(self) -> float:
        """The currently active latency scale (1.0 when healthy)."""
        return self._slow_factor if self.sim.now < self._slow_until else 1.0

    def _scaled(self, ns: int) -> int:
        if self.sim.now < self._slow_until:
            return max(1, int(ns * self._slow_factor))
        return ns

    # ------------------------------------------------------------------
    # Verbs object factories
    # ------------------------------------------------------------------
    def create_cq(self, with_channel: bool = False, name: str = "") -> CompletionQueue:
        channel = CompletionChannel(self.sim) if with_channel else None
        cq = CompletionQueue(self.sim, channel=channel, name=name)
        self.cqs[cq.cq_id] = cq
        return cq

    def create_srq(self, slots: int = 4096, name: str = "") -> WorkQueue:
        """A shared receive queue: one RECV ring consumed by many QPs.

        §5's future-work hook: "Multiple clients can be supported …
        using shared receive queues on the first replica in the chain."
        Pass the returned queue as ``srq=`` to :meth:`create_qp`.
        """
        label = name or f"{self.name}.srq{len(self.qps)}"
        ring = self.memory.allocate(slots * WQE_SIZE, f"{label}.ring")
        return WorkQueue(self.memory, ring, name=label)

    def create_qp(self, send_cq: CompletionQueue, recv_cq: CompletionQueue,
                  sq_slots: int = 4096, rq_slots: int = 4096,
                  name: str = "", srq: Optional[WorkQueue] = None) -> QueuePair:
        """Create a QP, allocating its descriptor rings in host memory.

        With ``srq`` set, the QP consumes RECVs from the shared queue
        instead of a private ring (inbound SENDs from any QP sharing it
        take the next descriptor in shared FIFO order).
        """
        serial = len(self.qps)
        label = name or f"{self.name}.qp{serial}"
        sq_ring = self.memory.allocate(sq_slots * WQE_SIZE, f"{label}.sqring.{serial}")
        sq = WorkQueue(self.memory, sq_ring, name=f"{label}.sq")
        if srq is not None:
            rq = srq
        else:
            rq_ring = self.memory.allocate(rq_slots * WQE_SIZE,
                                           f"{label}.rqring.{serial}")
            rq = WorkQueue(self.memory, rq_ring, name=f"{label}.rq")
        qp = QueuePair(self, sq, rq, send_cq, recv_cq, name=label)
        qp.uses_srq = srq is not None
        self.qps[qp.qp_num] = qp
        self._outstanding[qp.qp_num] = 0
        self._drain_waiters[qp.qp_num] = []
        self.sim.process(self._sq_service(qp), name=f"{label}.sqsvc")
        return qp

    def register_mr(self, addr: int, length: int, access: Access,
                    name: str = "") -> MemoryRegion:
        """Register host memory for (remote) access.

        Registering a QP's ring region with ``REMOTE_WRITE`` is what enables
        HyperLoop's remote work-request manipulation; the bounds check in
        :meth:`_validate_remote` is the safety net the paper calls out.
        """
        lkey = next(self._next_key)
        rkey = next(self._next_key)
        mr = MemoryRegion(addr=addr, length=length, lkey=lkey, rkey=rkey,
                          access=access, name=name)
        self.mrs[rkey] = mr
        return mr

    def deregister_mr(self, mr: MemoryRegion) -> None:
        """Invalidate a memory region; its rkey stops resolving."""
        self.mrs.pop(mr.rkey, None)

    def destroy_qp(self, qp: QueuePair) -> None:
        """Tear a QP down: flush it, stop its service, free its rings."""
        if qp.qp_num not in self.qps:
            return
        if qp.state is not QPState.ERROR:
            qp.to_error()
        del self.qps[qp.qp_num]
        self.doorbell(qp)  # Wake the service loop so it can exit.
        self._kicks.pop(qp.qp_num, None)
        self._outstanding.pop(qp.qp_num, None)
        self._drain_waiters.pop(qp.qp_num, None)
        for req_id, pending in list(self._pending.items()):
            if pending.qp is qp:
                del self._pending[req_id]
        self.memory.free(qp.sq.ring)
        if not qp.uses_srq:
            # Shared receive rings belong to their creator, not any QP.
            self.memory.free(qp.rq.ring)

    def ring_mr(self, qp: QueuePair, queue: str = "sq") -> MemoryRegion:
        """Register a QP's descriptor ring as a remote-writable MR."""
        wq = qp.sq if queue == "sq" else qp.rq
        return self.register_mr(wq.ring.address, wq.ring.size,
                                Access.LOCAL_WRITE | Access.REMOTE_WRITE,
                                name=f"{qp.name}.{queue}.ring")

    # ------------------------------------------------------------------
    # Doorbell & send-queue service
    # ------------------------------------------------------------------
    def doorbell(self, qp: QueuePair) -> None:
        """Software (or a completed WAIT) tells the NIC a queue has work."""
        kick = self._kicks.get(qp.qp_num)
        if kick is not None and not kick.triggered:
            kick.succeed()

    def kick_all(self) -> None:
        """Re-evaluate every stalled send queue.

        Called after inbound DMA lands, because the write may have patched
        descriptor bytes (ownership bits) in some ring.
        """
        for qp_num in list(self._kicks):
            kick = self._kicks.get(qp_num)
            if kick is not None and not kick.triggered:
                kick.succeed()

    def _sq_service(self, qp: QueuePair) -> ProcessGenerator:
        """Per-QP send-queue processor (one NIC execution context per QP)."""
        params = self.params
        while True:
            if qp.qp_num not in self.qps:
                return  # Destroyed.
            if qp.state is QPState.ERROR:
                yield self._stall(qp)
                continue
            wqe = qp.sq.peek_head()
            if wqe is None or not wqe.owned:
                # Empty queue, or a pre-posted descriptor whose ownership has
                # not been granted yet (HyperLoop's deferred posting).
                yield self._stall(qp)
                continue
            if wqe.fence and self._outstanding[qp.qp_num] > 0:
                yield self._drain(qp)
                continue
            if wqe.opcode is Opcode.WAIT:
                cq = self.cqs.get(wqe.wait_cq)
                if cq is None:
                    raise RemoteAccessError(
                        f"{qp.name}: WAIT on unknown CQ id {wqe.wait_cq}")
                # wait_count == 0 selects consume-mode (CORE-Direct): wait
                # for — and consume — the next completion beyond those this
                # queue's earlier WAITs already consumed.  Cursors are per
                # waiting QP, so several queues can fan out from one CQ.
                target = (cq.wait_cursor(qp.qp_num) + 1
                          if wqe.wait_count == 0 else wqe.wait_count)
                if cq.count < target:
                    stall = self._stall(qp)
                    cq.subscribe_count(target, lambda: self.doorbell(qp))
                    yield stall
                    continue
                if wqe.wait_count == 0:
                    cq.advance_wait_cursor(qp.qp_num, target)
                qp.sq.advance_head()
                self.wqes_executed.increment()
                yield self._scaled(params.wait_processing_ns)  # bare-delay fast path
                if wqe.signaled:
                    qp.send_cq.push(WorkCompletion(
                        wr_id=wqe.wr_id, opcode=Opcode.WAIT,
                        status=WCStatus.SUCCESS, qp_num=qp.qp_num))
                continue
            # A regular operation: consume the descriptor and initiate it.
            qp.sq.advance_head()
            self.wqes_executed.increment()
            if self.tracer is not None:
                self.tracer.emit(self.sim.now, f"{self.name}.nic",
                                 "wqe.initiate",
                                 f"{qp.name}:{wqe.opcode.name}")
            yield self._scaled(params.wqe_processing_ns)  # bare-delay fast path
            yield from self._initiate(qp, wqe)

    def _stall(self, qp: QueuePair) -> Event:
        kick = self.sim.event()
        self._kicks[qp.qp_num] = kick
        return kick

    def _drain(self, qp: QueuePair) -> Event:
        event = self.sim.event()
        self._drain_waiters[qp.qp_num].append(event)
        return event

    # ------------------------------------------------------------------
    # Operation initiation (sender side)
    # ------------------------------------------------------------------
    def _gather(self, sg_list: List[Sge]) -> bytes:
        parts = [self.cache.dma_read(sge.addr, sge.length)
                 for sge in sg_list if sge.length]
        return b"".join(parts)

    def _initiate(self, qp: QueuePair, wqe: DecodedWQE) -> ProcessGenerator:
        params = self.params
        op = wqe.opcode
        if op is Opcode.NOP:
            # Completes locally; exists so gCAS can skip execution on nodes
            # whose execute-map bit is clear while keeping the WAIT chain
            # counting (§4.2).
            if wqe.signaled:
                qp.send_cq.push(WorkCompletion(
                    wr_id=wqe.wr_id, opcode=op, status=WCStatus.SUCCESS,
                    qp_num=qp.qp_num))
            return
        if qp.remote is None:
            raise RuntimeError(f"{qp.name}: not connected")
        req_id = next(RNIC._req_ids)
        message = Message(kind="", src_nic=self.name, src_qp=qp.qp_num,
                          dst_qp=qp.remote.qp_num, req_id=req_id)
        if op in (Opcode.SEND, Opcode.WRITE, Opcode.WRITE_WITH_IMM):
            payload = self._gather(wqe.sg_list)
            if payload:
                yield self._scaled(params.dma_ns(len(payload)))  # bare-delay fast path
            message.payload = payload
            message.length = len(payload)
            message.imm = wqe.imm
            if op is Opcode.SEND:
                message.kind = "send"
            else:
                message.kind = "write" if op is Opcode.WRITE else "write_imm"
                message.has_imm = op is Opcode.WRITE_WITH_IMM
                message.remote_addr = wqe.remote_addr
                message.rkey = wqe.rkey
        elif op is Opcode.READ:
            message.kind = "read_req"
            message.remote_addr = wqe.remote_addr
            message.rkey = wqe.rkey
            message.length = wqe.total_length
        elif op is Opcode.CAS:
            message.kind = "cas_req"
            message.remote_addr = wqe.remote_addr
            message.rkey = wqe.rkey
            message.compare = wqe.compare
            message.swap = wqe.swap
            message.length = 8
        elif op is Opcode.FETCH_ADD:
            message.kind = "faa_req"
            message.remote_addr = wqe.remote_addr
            message.rkey = wqe.rkey
            message.swap = wqe.swap  # The addend rides the swap field.
            message.length = 8
        else:
            raise ValueError(f"cannot initiate opcode {op}")
        self._pending[req_id] = _PendingOp(qp=qp, wqe=wqe)
        self._outstanding[qp.qp_num] += 1
        self._transmit(qp, message)

    def _transmit(self, qp: QueuePair, message: Message) -> None:
        if qp.is_loopback or qp.remote.nic is self:
            self.sim.call_at(self.sim.now + self._scaled(self.params.loopback_ns),
                             lambda: self._ingress_enqueue(message))
        else:
            dest = qp.remote.nic.port
            self.port.transmit(dest, len(message.payload), message)

    def _respond(self, request: Message, response: Message) -> None:
        """Send a response/ACK back to the requester."""
        src_qp = self.qps.get(request.dst_qp)
        if src_qp is None:
            return
        if src_qp.is_loopback or request.src_nic == self.name:
            self.sim.call_at(self.sim.now + self._scaled(self.params.loopback_ns),
                             lambda: self._ingress_enqueue(response))
        else:
            dest = self.fabric.ports[request.src_nic]
            self.port.transmit(dest, len(response.payload), response)

    # ------------------------------------------------------------------
    # Ingress pipeline (receiver side)
    # ------------------------------------------------------------------
    def _ingress_enqueue(self, message: Message) -> None:
        self._ingress.append(message)
        if not self._ingress_busy:
            self._ingress_busy = True
            self.sim.process(self._ingress_service(), name=f"{self.name}.ingress")

    def _ingress_service(self) -> ProcessGenerator:
        params = self.params
        while self._ingress:
            message = self._ingress.popleft()
            self.messages_handled.increment()
            if message.kind in ("ack", "read_resp", "cas_resp"):
                yield self._scaled(params.ack_processing_ns)  # bare-delay fast path
                self._handle_response(message)
            else:
                yield self._scaled(params.ingress_processing_ns)  # bare-delay fast path
                if message.payload:
                    yield self._scaled(params.dma_ns(len(message.payload)))  # bare-delay fast path
                self._handle_request(message)
        self._ingress_busy = False

    def _handle_request(self, message: Message) -> None:
        qp = self.qps.get(message.dst_qp)
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, f"{self.name}.nic", "msg.rx",
                             f"{message.kind}:{len(message.payload)}B")
        if qp is None or qp.state is not QPState.RTS:
            return  # Dropped: QP gone (failure injection) — sender times out.
        handler = {
            "send": self._rx_send,
            "write": self._rx_write,
            "write_imm": self._rx_write,
            "read_req": self._rx_read,
            "cas_req": self._rx_cas,
            "faa_req": self._rx_faa,
        }[message.kind]
        handler(qp, message)

    def _validate_remote(self, message: Message, needed: Access) -> MemoryRegion:
        mr = self.mrs.get(message.rkey)
        if mr is None:
            raise RemoteAccessError(f"{self.name}: unknown rkey {message.rkey:#x}")
        mr.check(message.remote_addr, message.length, needed)
        return mr

    def _consume_recv(self, qp: QueuePair, message: Message) -> Optional[DecodedWQE]:
        """Pop the head RECV WQE, or schedule an RNR retry if none posted."""
        recv = qp.rq.peek_head()
        if recv is None:
            # Receiver not ready.  Real RC NICs NAK and the sender retries;
            # we re-deliver the message after a backoff, bounded.
            self.rnr_retries.increment()
            message.rnr_retries += 1
            if message.rnr_retries > self.params.max_rnr_retries:
                raise RuntimeError(
                    f"{self.name}: RNR retries exhausted on {qp.name} "
                    "(recv ring never replenished)")
            self.sim.call_at(self.sim.now + self.params.rnr_retry_delay_ns,
                             lambda: self._ingress_enqueue(message))
            return None
        qp.rq.advance_head()
        return recv

    def _scatter(self, qp: QueuePair, recv: DecodedWQE, payload: bytes) -> None:
        """Scatter an inbound payload across a RECV WQE's SG list.

        When an SGE points into a registered ring region this is the remote
        work-request manipulation path: descriptor bytes (including
        ownership bits) change underneath pre-posted WQEs.
        """
        capacity = recv.total_length
        if len(payload) > capacity:
            raise RemoteAccessError(
                f"{qp.name}: inbound {len(payload)}B exceeds RECV capacity "
                f"{capacity}B")
        offset = 0
        for sge in recv.sg_list:
            if offset >= len(payload):
                break
            chunk = payload[offset:offset + sge.length]
            self.cache.dma_write(sge.addr, chunk)
            offset += len(chunk)

    def _rx_send(self, qp: QueuePair, message: Message) -> None:
        recv = self._consume_recv(qp, message)
        if recv is None:
            return
        self._scatter(qp, recv, message.payload)
        qp.recv_cq.push(WorkCompletion(
            wr_id=recv.wr_id, opcode=Opcode.RECV, status=WCStatus.SUCCESS,
            byte_len=len(message.payload), qp_num=qp.qp_num))
        self.kick_all()
        self._ack(message)

    def _rx_write(self, qp: QueuePair, message: Message) -> None:
        try:
            self._validate_remote(message, Access.REMOTE_WRITE)
        except RemoteAccessError:
            self.remote_access_errors.increment()
            self._ack(message, status=WCStatus.REMOTE_ACCESS_ERROR)
            return
        if message.kind == "write_imm":
            recv = self._consume_recv(qp, message)
            if recv is None:
                return
            self.cache.dma_write(message.remote_addr, message.payload)
            qp.recv_cq.push(WorkCompletion(
                wr_id=recv.wr_id, opcode=Opcode.RECV, status=WCStatus.SUCCESS,
                byte_len=len(message.payload), imm=message.imm, has_imm=True,
                qp_num=qp.qp_num))
        else:
            self.cache.dma_write(message.remote_addr, message.payload)
        self.kick_all()
        self._ack(message)

    def _rx_read(self, qp: QueuePair, message: Message) -> None:
        try:
            self._validate_remote(message, Access.REMOTE_READ)
        except RemoteAccessError:
            self.remote_access_errors.increment()
            self._ack(message, status=WCStatus.REMOTE_ACCESS_ERROR)
            return
        # Firmware behaviour HyperLoop leverages for gFLUSH: serving a READ
        # (even 0-byte) first drains the volatile write cache to NVM.
        self.cache.flush()
        data = self.cache.dma_read(message.remote_addr, message.length) \
            if message.length else b""
        self._respond(message, Message(
            kind="read_resp", src_nic=self.name, src_qp=message.dst_qp,
            dst_qp=message.src_qp, req_id=message.req_id, payload=data))

    def _rx_cas(self, qp: QueuePair, message: Message) -> None:
        try:
            self._validate_remote(message, Access.REMOTE_ATOMIC)
        except RemoteAccessError:
            self.remote_access_errors.increment()
            self._ack(message, status=WCStatus.REMOTE_ACCESS_ERROR)
            return
        original = int.from_bytes(self.cache.dma_read(message.remote_addr, 8),
                                  "little")
        if original == message.compare:
            self.cache.dma_write(message.remote_addr,
                                 message.swap.to_bytes(8, "little"))
            self.kick_all()
        self._respond(message, Message(
            kind="cas_resp", src_nic=self.name, src_qp=message.dst_qp,
            dst_qp=message.src_qp, req_id=message.req_id,
            payload=original.to_bytes(8, "little")))

    def _rx_faa(self, qp: QueuePair, message: Message) -> None:
        """Atomic fetch-and-add: returns the original 8-byte value."""
        try:
            self._validate_remote(message, Access.REMOTE_ATOMIC)
        except RemoteAccessError:
            self.remote_access_errors.increment()
            self._ack(message, status=WCStatus.REMOTE_ACCESS_ERROR)
            return
        original = int.from_bytes(self.cache.dma_read(message.remote_addr, 8),
                                  "little")
        updated = (original + message.swap) % (1 << 64)
        self.cache.dma_write(message.remote_addr,
                             updated.to_bytes(8, "little"))
        self.kick_all()
        self._respond(message, Message(
            kind="cas_resp", src_nic=self.name, src_qp=message.dst_qp,
            dst_qp=message.src_qp, req_id=message.req_id,
            payload=original.to_bytes(8, "little")))

    def _ack(self, message: Message, status: WCStatus = WCStatus.SUCCESS) -> None:
        self._respond(message, Message(
            kind="ack", src_nic=self.name, src_qp=message.dst_qp,
            dst_qp=message.src_qp, req_id=message.req_id, status=status))

    # ------------------------------------------------------------------
    # Response handling (sender side completion)
    # ------------------------------------------------------------------
    def _handle_response(self, message: Message) -> None:
        pending = self._pending.pop(message.req_id, None)
        if pending is None:
            return
        qp, wqe = pending.qp, pending.wqe
        if message.kind == "read_resp" and message.payload:
            offset = 0
            for sge in wqe.sg_list:
                chunk = message.payload[offset:offset + sge.length]
                if not chunk:
                    break
                self.cache.dma_write(sge.addr, chunk)
                offset += len(chunk)
            self.kick_all()
        elif message.kind == "cas_resp":
            # The original value lands at the WQE's local address — for gCAS
            # that address is a result-map slot inside the metadata region.
            if wqe.sg_list:
                self.cache.dma_write(wqe.sg_list[0].addr, message.payload[:8])
                self.kick_all()
        if wqe.signaled:
            qp.send_cq.push(WorkCompletion(
                wr_id=wqe.wr_id, opcode=wqe.opcode, status=message.status,
                byte_len=wqe.total_length, qp_num=qp.qp_num))
        if qp.qp_num not in self._outstanding:
            return  # The QP was destroyed while this op was in flight.
        self._outstanding[qp.qp_num] -= 1
        if self._outstanding[qp.qp_num] == 0:
            waiters = self._drain_waiters[qp.qp_num]
            self._drain_waiters[qp.qp_num] = []
            for waiter in waiters:
                if not waiter.triggered:
                    waiter.succeed()

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def on_power_failure(self) -> None:
        """Lose volatile NIC state: cache, in-flight ops, queue progress."""
        self.cache.on_power_failure()
        self._pending.clear()
        self._ingress.clear()
        for qp in self.qps.values():
            if qp.state is QPState.RTS:
                qp.to_error()
