"""Simulated RDMA substrate: WQEs, verbs, driver, NIC, fabric."""

from .driver import RingFullError, WorkQueue
from .fabric import Fabric, FabricParams, Port
from .nic import Message, NICParams, RNIC
from .verbs import (
    Access,
    CompletionChannel,
    CompletionQueue,
    MemoryRegion,
    QPState,
    QueuePair,
    RemoteAccessError,
    WCStatus,
    WorkCompletion,
)
from .wqe import (
    MAX_SGE,
    WQE_SIZE,
    Opcode,
    Sge,
    WorkRequest,
    WQEFlags,
    decode_wqe,
    encode_wqe,
)

__all__ = [
    "RingFullError",
    "WorkQueue",
    "Fabric",
    "FabricParams",
    "Port",
    "Message",
    "NICParams",
    "RNIC",
    "Access",
    "CompletionChannel",
    "CompletionQueue",
    "MemoryRegion",
    "QPState",
    "QueuePair",
    "RemoteAccessError",
    "WCStatus",
    "WorkCompletion",
    "MAX_SGE",
    "WQE_SIZE",
    "Opcode",
    "Sge",
    "WorkRequest",
    "WQEFlags",
    "decode_wqe",
    "encode_wqe",
]
