"""Network fabric connecting simulated RNICs.

A single non-blocking switch model, adequate for the paper's testbed (a rack
of machines behind one ToR): every NIC has one full-duplex port; a message
experiences

* **serialization** at the sender's egress (``size / bandwidth``, queued
  FIFO behind earlier messages from the same port),
* fixed **propagation/switching delay**, and
* delivery into the receiving NIC's ingress pipeline.

Loopback transfers (both QPs on the same NIC — HyperLoop's local-copy and
local-CAS queue pairs) never touch the fabric; the NIC handles them with a
small internal latency, so they are modelled in :mod:`repro.rdma.nic`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..sim.engine import Simulator
from ..sim.units import gbps_to_bytes_per_ns, us

__all__ = ["FabricParams", "Fabric", "Port"]


@dataclass(slots=True)
class FabricParams:
    """Link characteristics, defaulting to the paper's 56 Gbps ConnectX-3."""

    bandwidth_gbps: float = 56.0
    propagation_ns: int = us(1)          # ToR switching + wire, one way.
    per_message_overhead_bytes: int = 66  # Headers: Eth + IB transport.

    @property
    def bytes_per_ns(self) -> float:
        return gbps_to_bytes_per_ns(self.bandwidth_gbps)

    def serialization_ns(self, size_bytes: int) -> int:
        wire_bytes = size_bytes + self.per_message_overhead_bytes
        return max(1, int(wire_bytes / self.bytes_per_ns))


class Port:
    """One NIC's attachment point: an egress queue with FIFO serialization."""

    __slots__ = ("fabric", "name", "_egress_free_at", "bytes_sent",
                 "messages_sent", "_deliver")

    def __init__(self, fabric: "Fabric", name: str) -> None:
        self.fabric = fabric
        self.name = name
        self._egress_free_at = 0
        self.bytes_sent = 0
        self.messages_sent = 0
        self._deliver: Optional[Callable[[object], None]] = None

    def attach(self, deliver: Callable[[object], None]) -> None:
        """Register the NIC-side ingress callback."""
        self._deliver = deliver

    def transmit(self, dest: "Port", size_bytes: int, message: object) -> int:
        """Queue a message for transmission; returns its delivery time.

        Delivery calls the destination port's ingress callback.  The sender's
        egress is busy until serialization finishes; back-to-back messages
        queue behind each other, which is what throttles Figure 9's
        throughput at large message sizes.
        """
        if self._deliver is None or dest._deliver is None:
            raise RuntimeError("both ports must be attached before transmit")
        sim = self.fabric.sim
        params = self.fabric.params
        start = max(sim.now, self._egress_free_at)
        done_serializing = start + params.serialization_ns(size_bytes)
        self._egress_free_at = done_serializing
        self.bytes_sent += size_bytes
        self.messages_sent += 1
        arrival = done_serializing + params.propagation_ns
        fault = self.fabric.link_fault(self.name, dest.name)
        if fault is not None:
            until_ns, mode = fault
            if mode == "drop" or until_ns is None:
                # Partition / hard link cut: the message serializes onto
                # the wire and dies at the cut.  The sender's transport
                # never learns — pending ops hang until a failure
                # detector aborts them, exactly like a real RC QP whose
                # retransmits all vanish.
                self.fabric.messages_dropped += 1
                return arrival
            # Link flap: frames are paused at the far side of the flap
            # and delivered once the link heals, in transmit order.
            arrival = max(arrival, until_ns + params.propagation_ns)
        sim.call_at(arrival, lambda: dest._deliver(message))
        return arrival


class Fabric:
    """The switch: a registry of ports plus shared link parameters."""

    __slots__ = ("sim", "params", "ports", "_link_faults",
                 "messages_dropped")

    def __init__(self, sim: Simulator, params: Optional[FabricParams] = None) -> None:
        self.sim = sim
        self.params = params or FabricParams()
        self.ports: Dict[str, Port] = {}
        # Fault-injection state: (src, dst) -> (until_ns | None, mode).
        # ``drop`` loses crossing messages (partition); ``defer`` parks
        # them until the expiry (link flap).  ``None`` expiry means "until
        # heal()" and is only valid for ``drop``.
        self._link_faults: Dict[Tuple[str, str], Tuple[Optional[int], str]] = {}
        self.messages_dropped = 0

    def create_port(self, name: str) -> Port:
        if name in self.ports:
            raise ValueError(f"duplicate port name {name!r}")
        port = Port(self, name)
        self.ports[name] = port
        return port

    # ------------------------------------------------------------------
    # Fault injection (repro.faults link events)
    # ------------------------------------------------------------------
    def sever(self, a: str, b: str, until_ns: Optional[int] = None,
              mode: str = "drop") -> None:
        """Cut the ``a`` <-> ``b`` link (both directions).

        ``mode="drop"`` loses every crossing message until ``until_ns``
        (or until :meth:`heal` when ``until_ns`` is ``None``) — the
        partition model.  ``mode="defer"`` parks crossing messages and
        delivers them when the link comes back — the flap model, which
        loses nothing but adds up to the flap's duration in latency.
        """
        if mode not in ("drop", "defer"):
            raise ValueError(f"unknown sever mode {mode!r}")
        if mode == "defer" and until_ns is None:
            raise ValueError("defer mode needs an expiry (until_ns)")
        if until_ns is not None and until_ns < self.sim.now:
            raise ValueError(
                f"sever expiry {until_ns} is in the past (now {self.sim.now})")
        self._link_faults[(a, b)] = (until_ns, mode)
        self._link_faults[(b, a)] = (until_ns, mode)

    def heal(self, a: str, b: str) -> None:
        """Restore the ``a`` <-> ``b`` link immediately."""
        self._link_faults.pop((a, b), None)
        self._link_faults.pop((b, a), None)

    def link_fault(self, src: str, dst: str) -> Optional[Tuple[Optional[int], str]]:
        """The active fault on ``src -> dst``, or ``None``.

        Expired entries are reaped lazily here, so a flap needs no
        heal-side bookkeeping process.
        """
        fault = self._link_faults.get((src, dst))
        if fault is None:
            return None
        until_ns, _mode = fault
        if until_ns is not None and self.sim.now >= until_ns:
            del self._link_faults[(src, dst)]
            return None
        return fault
