"""Network fabric connecting simulated RNICs.

A single non-blocking switch model, adequate for the paper's testbed (a rack
of machines behind one ToR): every NIC has one full-duplex port; a message
experiences

* **serialization** at the sender's egress (``size / bandwidth``, queued
  FIFO behind earlier messages from the same port),
* fixed **propagation/switching delay**, and
* delivery into the receiving NIC's ingress pipeline.

Loopback transfers (both QPs on the same NIC — HyperLoop's local-copy and
local-CAS queue pairs) never touch the fabric; the NIC handles them with a
small internal latency, so they are modelled in :mod:`repro.rdma.nic`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..sim.engine import Simulator
from ..sim.units import gbps_to_bytes_per_ns, us

__all__ = ["FabricParams", "Fabric", "Port"]


@dataclass(slots=True)
class FabricParams:
    """Link characteristics, defaulting to the paper's 56 Gbps ConnectX-3."""

    bandwidth_gbps: float = 56.0
    propagation_ns: int = us(1)          # ToR switching + wire, one way.
    per_message_overhead_bytes: int = 66  # Headers: Eth + IB transport.

    @property
    def bytes_per_ns(self) -> float:
        return gbps_to_bytes_per_ns(self.bandwidth_gbps)

    def serialization_ns(self, size_bytes: int) -> int:
        wire_bytes = size_bytes + self.per_message_overhead_bytes
        return max(1, int(wire_bytes / self.bytes_per_ns))


class Port:
    """One NIC's attachment point: an egress queue with FIFO serialization."""

    __slots__ = ("fabric", "name", "_egress_free_at", "bytes_sent",
                 "messages_sent", "_deliver")

    def __init__(self, fabric: "Fabric", name: str) -> None:
        self.fabric = fabric
        self.name = name
        self._egress_free_at = 0
        self.bytes_sent = 0
        self.messages_sent = 0
        self._deliver: Optional[Callable[[object], None]] = None

    def attach(self, deliver: Callable[[object], None]) -> None:
        """Register the NIC-side ingress callback."""
        self._deliver = deliver

    def transmit(self, dest: "Port", size_bytes: int, message: object) -> int:
        """Queue a message for transmission; returns its delivery time.

        Delivery calls the destination port's ingress callback.  The sender's
        egress is busy until serialization finishes; back-to-back messages
        queue behind each other, which is what throttles Figure 9's
        throughput at large message sizes.
        """
        if self._deliver is None or dest._deliver is None:
            raise RuntimeError("both ports must be attached before transmit")
        sim = self.fabric.sim
        params = self.fabric.params
        start = max(sim.now, self._egress_free_at)
        done_serializing = start + params.serialization_ns(size_bytes)
        self._egress_free_at = done_serializing
        self.bytes_sent += size_bytes
        self.messages_sent += 1
        arrival = done_serializing + params.propagation_ns
        sim.call_at(arrival, lambda: dest._deliver(message))
        return arrival


class Fabric:
    """The switch: a registry of ports plus shared link parameters."""

    __slots__ = ("sim", "params", "ports")

    def __init__(self, sim: Simulator, params: Optional[FabricParams] = None) -> None:
        self.sim = sim
        self.params = params or FabricParams()
        self.ports: Dict[str, Port] = {}

    def create_port(self, name: str) -> Port:
        if name in self.ports:
            raise ValueError(f"duplicate port name {name!r}")
        port = Port(self, name)
        self.ports[name] = port
        return port
