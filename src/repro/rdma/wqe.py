"""Work-queue entry (WQE) binary layout.

HyperLoop's central trick (§4.1, "remote work request manipulation") is that
work queues live in *registered host memory*, so a peer's NIC can scatter an
incoming message's bytes directly onto the memory descriptors of pre-posted
WQEs — rewriting what a future WRITE/SEND/CAS will do and flipping its
ownership bit — all without the local CPU.

For that mechanism to be reproduced honestly the WQEs here are real bytes:
each entry is a fixed 160-byte descriptor serialized into a ring buffer in
simulated host memory.  The NIC parses descriptors from memory when it
executes them, so any byte written into the ring (by the local driver or by a
remote NIC's scatter DMA) genuinely changes NIC behaviour.

Descriptor layout (little-endian)::

    offset  size  field
    0       1     opcode
    1       1     flags        (OWNED | SIGNALED | FENCE)
    2       1     num_sge
    3       1     reserved
    4       4     wr_id
    8       4     imm
    12      4     rkey
    16      8     remote_addr
    24      8     compare      (CAS)
    32      8     swap         (CAS)
    40      4     wait_cq      (WAIT: CQ id to watch)
    44      4     wait_count   (WAIT: completion count to reach)
    48      16*6  sge[6]       each: addr u64, length u32, pad u32
    144..160      padding

The named offsets are exported so :mod:`repro.core.metadata` can compute the
exact byte ranges a metadata SEND must scatter into.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import List

__all__ = [
    "Opcode",
    "WQEFlags",
    "Sge",
    "WorkRequest",
    "WQE_SIZE",
    "MAX_SGE",
    "OFF_OPCODE",
    "OFF_FLAGS",
    "OFF_NUM_SGE",
    "OFF_WR_ID",
    "OFF_IMM",
    "OFF_RKEY",
    "OFF_REMOTE_ADDR",
    "OFF_COMPARE",
    "OFF_SWAP",
    "OFF_WAIT_CQ",
    "OFF_WAIT_COUNT",
    "sge_offset",
    "encode_wqe",
    "decode_wqe",
]

WQE_SIZE = 160
MAX_SGE = 6

OFF_OPCODE = 0
OFF_FLAGS = 1
OFF_NUM_SGE = 2
OFF_WR_ID = 4
OFF_IMM = 8
OFF_RKEY = 12
OFF_REMOTE_ADDR = 16
OFF_COMPARE = 24
OFF_SWAP = 32
OFF_WAIT_CQ = 40
OFF_WAIT_COUNT = 44
OFF_SGE0 = 48
SGE_SIZE = 16

_HEADER = struct.Struct("<BBBxIII")         # opcode, flags, num_sge, wr_id, imm, rkey
_EXT = struct.Struct("<QQQII")              # remote_addr, compare, swap, wait_cq, wait_count
_SGE = struct.Struct("<QII")                # addr, length, pad


def sge_offset(index: int, field_name: str = "addr") -> int:
    """Byte offset of an SGE field within the descriptor.

    ``field_name`` is ``"addr"`` (8 bytes) or ``"length"`` (4 bytes).
    """
    if not 0 <= index < MAX_SGE:
        raise ValueError(f"sge index {index} out of range")
    base = OFF_SGE0 + index * SGE_SIZE
    if field_name == "addr":
        return base
    if field_name == "length":
        return base + 8
    raise ValueError(f"unknown sge field {field_name!r}")


class Opcode(IntEnum):
    """WQE opcodes.  Values are stable: they appear in serialized descriptors."""

    NOP = 0
    SEND = 1
    RECV = 2
    WRITE = 3
    WRITE_WITH_IMM = 4
    READ = 5
    CAS = 6
    WAIT = 7
    FETCH_ADD = 8


class WQEFlags(IntEnum):
    OWNED = 1       # NIC may execute this descriptor.
    SIGNALED = 2    # Generate a CQE on completion.
    FENCE = 4       # Wait for all prior WQEs on this QP to complete first.
    STATIC = 8      # Cyclic re-arm keeps ownership (pre-posted forever).


@dataclass(frozen=True, slots=True)
class Sge:
    """A scatter/gather element: a contiguous local memory segment."""

    addr: int
    length: int

    def __post_init__(self):
        if self.addr < 0 or self.length < 0:
            raise ValueError("sge addr/length must be non-negative")


@dataclass(slots=True)
class WorkRequest:
    """The user-level work request handed to post_send/post_recv.

    The driver serializes this into a fixed-size descriptor; the NIC only ever
    sees the serialized form.
    """

    opcode: Opcode
    sg_list: List[Sge] = field(default_factory=list)
    wr_id: int = 0
    remote_addr: int = 0
    rkey: int = 0
    imm: int = 0
    compare: int = 0      # CAS expected value.
    swap: int = 0         # CAS replacement, or FETCH_ADD addend.
    wait_cq: int = 0
    wait_count: int = 0
    signaled: bool = True
    fence: bool = False
    #: Survives cyclic ring re-arm with ownership intact — for descriptors
    #: that serve every reuse of a slot unchanged (static forwards/ACKs).
    static: bool = False

    @property
    def total_length(self) -> int:
        return sum(sge.length for sge in self.sg_list)


def encode_wqe(wr: WorkRequest, owned: bool) -> bytes:
    """Serialize a work request into its fixed-size descriptor."""
    if len(wr.sg_list) > MAX_SGE:
        raise ValueError(f"too many SGEs: {len(wr.sg_list)} > {MAX_SGE}")
    flags = 0
    if owned:
        flags |= WQEFlags.OWNED
    if wr.signaled:
        flags |= WQEFlags.SIGNALED
    if wr.fence:
        flags |= WQEFlags.FENCE
    if wr.static:
        flags |= WQEFlags.STATIC
    buf = bytearray(WQE_SIZE)
    _HEADER.pack_into(buf, 0, int(wr.opcode), flags, len(wr.sg_list),
                      wr.wr_id & 0xFFFFFFFF, wr.imm & 0xFFFFFFFF,
                      wr.rkey & 0xFFFFFFFF)
    _EXT.pack_into(buf, OFF_REMOTE_ADDR, wr.remote_addr, wr.compare, wr.swap,
                   wr.wait_cq & 0xFFFFFFFF, wr.wait_count & 0xFFFFFFFF)
    for i, sge in enumerate(wr.sg_list):
        _SGE.pack_into(buf, OFF_SGE0 + i * SGE_SIZE, sge.addr, sge.length, 0)
    return bytes(buf)


@dataclass(slots=True)
class DecodedWQE:
    """A descriptor parsed back out of ring memory by the NIC."""

    opcode: Opcode
    owned: bool
    signaled: bool
    fence: bool
    num_sge: int
    wr_id: int
    imm: int
    rkey: int
    remote_addr: int
    compare: int
    swap: int
    wait_cq: int
    wait_count: int
    sg_list: List[Sge]

    @property
    def total_length(self) -> int:
        return sum(sge.length for sge in self.sg_list)


def decode_wqe(data: bytes) -> DecodedWQE:
    """Parse a WQE_SIZE-byte descriptor as the NIC sees it."""
    if len(data) != WQE_SIZE:
        raise ValueError(f"descriptor must be {WQE_SIZE} bytes, got {len(data)}")
    opcode_raw, flags, num_sge, wr_id, imm, rkey = _HEADER.unpack_from(data, 0)
    remote_addr, compare, swap, wait_cq, wait_count = \
        _EXT.unpack_from(data, OFF_REMOTE_ADDR)
    if num_sge > MAX_SGE:
        raise ValueError(f"corrupt descriptor: num_sge={num_sge}")
    sg_list = []
    for i in range(num_sge):
        addr, length, _pad = _SGE.unpack_from(data, OFF_SGE0 + i * SGE_SIZE)
        sg_list.append(Sge(addr, length))
    return DecodedWQE(
        opcode=Opcode(opcode_raw),
        owned=bool(flags & WQEFlags.OWNED),
        signaled=bool(flags & WQEFlags.SIGNALED),
        fence=bool(flags & WQEFlags.FENCE),
        num_sge=num_sge,
        wr_id=wr_id,
        imm=imm,
        rkey=rkey,
        remote_addr=remote_addr,
        compare=compare,
        swap=swap,
        wait_cq=wait_cq,
        wait_count=wait_count,
        sg_list=sg_list,
    )
