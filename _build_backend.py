"""Minimal in-tree PEP 517/660 build backend.

The reproduction environment is offline and lacks the ``wheel`` package that
``setuptools.build_meta`` needs for editable installs, so this backend builds
the (tiny) editable wheel by hand: a ``.pth`` file pointing at ``src/`` plus
the required ``dist-info`` metadata.  ``pip install -e .`` works with no
network access and no extra build dependencies.
"""

import base64
import hashlib
import os
import zipfile

NAME = "repro"
VERSION = "1.0.0"
DIST = f"{NAME}-{VERSION}"


def _record_hash(data: bytes) -> str:
    digest = hashlib.sha256(data).digest()
    encoded = base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")
    return f"sha256={encoded},{len(data)}"


def _metadata() -> str:
    return (
        "Metadata-Version: 2.1\n"
        f"Name: {NAME}\n"
        f"Version: {VERSION}\n"
        "Summary: HyperLoop (SIGCOMM 2018) reproduction on a simulated "
        "RDMA/NVM substrate\n"
        "Requires-Python: >=3.9\n"
    )


def get_requires_for_build_editable(config_settings=None):
    return []


def get_requires_for_build_wheel(config_settings=None):
    return []


def prepare_metadata_for_build_editable(metadata_directory, config_settings=None):
    distinfo = os.path.join(metadata_directory, f"{DIST}.dist-info")
    os.makedirs(distinfo, exist_ok=True)
    with open(os.path.join(distinfo, "METADATA"), "w") as handle:
        handle.write(_metadata())
    with open(os.path.join(distinfo, "WHEEL"), "w") as handle:
        handle.write("Wheel-Version: 1.0\nGenerator: repro-inline\n"
                     "Root-Is-Purelib: true\nTag: py3-none-any\n")
    return f"{DIST}.dist-info"


prepare_metadata_for_build_wheel = prepare_metadata_for_build_editable


def _build(wheel_directory, editable: bool) -> str:
    wheel_name = f"{DIST}-py3-none-any.whl"
    src = os.path.abspath(os.path.join(os.path.dirname(__file__), "src"))
    files = {}
    if editable:
        files[f"__editable__.{NAME}.pth"] = (src + "\n").encode()
    else:
        for root, _dirs, names in os.walk(os.path.join(src, NAME)):
            for name in sorted(names):
                if name.endswith(".pyc"):
                    continue
                path = os.path.join(root, name)
                arcname = os.path.relpath(path, src)
                with open(path, "rb") as handle:
                    files[arcname] = handle.read()
    distinfo = f"{DIST}.dist-info"
    files[f"{distinfo}/METADATA"] = _metadata().encode()
    files[f"{distinfo}/WHEEL"] = (
        "Wheel-Version: 1.0\nGenerator: repro-inline\n"
        "Root-Is-Purelib: true\nTag: py3-none-any\n"
    ).encode()

    record_lines = []
    out_path = os.path.join(wheel_directory, wheel_name)
    with zipfile.ZipFile(out_path, "w", zipfile.ZIP_DEFLATED) as archive:
        for arcname, data in files.items():
            archive.writestr(arcname, data)
            record_lines.append(f"{arcname},{_record_hash(data)}")
        record_lines.append(f"{distinfo}/RECORD,,")
        archive.writestr(f"{distinfo}/RECORD", "\n".join(record_lines) + "\n")
    return wheel_name


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    return _build(wheel_directory, editable=True)


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    return _build(wheel_directory, editable=False)
